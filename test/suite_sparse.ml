(* Unit and property tests for Mdl_sparse. *)

module Vec = Mdl_sparse.Vec
module Coo = Mdl_sparse.Coo
module Csr = Mdl_sparse.Csr

let matrix_testable =
  Alcotest.testable Csr.pp (fun a b -> Csr.approx_equal a b)

let test_coo_basics () =
  let c = Coo.create ~rows:3 ~cols:4 in
  Coo.add c 0 1 2.0;
  Coo.add c 2 3 1.5;
  Coo.add c 0 1 0.0;
  (* zero ignored *)
  Alcotest.(check int) "nnz" 2 (Coo.nnz c);
  Alcotest.check_raises "row oob"
    (Invalid_argument "Coo.add: (3,0) out of bounds for 3x4") (fun () -> Coo.add c 3 0 1.0)

let test_csr_duplicate_folding () =
  let m = Csr.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 0, 2.0); (1, 1, 5.0) ] in
  Alcotest.(check int) "nnz after fold" 2 (Csr.nnz m);
  Alcotest.(check (float 1e-12)) "folded value" 3.0 (Csr.get m 0 0)

let test_csr_cancellation () =
  let m = Csr.of_triplets ~rows:1 ~cols:1 [ (0, 0, 1.0); (0, 0, -1.0) ] in
  Alcotest.(check int) "cancelled entry dropped" 0 (Csr.nnz m)

let test_csr_get () =
  let m = Csr.of_dense [| [| 1.0; 0.0; 2.0 |]; [| 0.0; 3.0; 0.0 |] |] in
  Alcotest.(check (float 0.0)) "get (0,2)" 2.0 (Csr.get m 0 2);
  Alcotest.(check (float 0.0)) "get absent" 0.0 (Csr.get m 1 0);
  Alcotest.check_raises "oob" (Invalid_argument "Csr.get: index out of bounds") (fun () ->
      ignore (Csr.get m 2 0))

let test_csr_sums () =
  let m = Csr.of_dense [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (float 1e-12)) "row sum 0" 3.0 (Csr.row_sum m 0);
  Alcotest.(check bool) "row sums" true (Vec.approx_equal (Csr.row_sums m) [| 3.0; 7.0 |]);
  Alcotest.(check bool) "col sums" true (Vec.approx_equal (Csr.col_sums m) [| 4.0; 6.0 |])

let test_csr_transpose () =
  let m = Csr.of_dense [| [| 1.0; 2.0; 0.0 |]; [| 0.0; 3.0; 4.0 |] |] in
  let mt = Csr.transpose m in
  Alcotest.(check int) "rows" 3 (Csr.rows mt);
  Alcotest.(check (float 0.0)) "entry" 4.0 (Csr.get mt 2 1);
  Alcotest.check matrix_testable "double transpose" m (Csr.transpose mt)

let test_csr_mul_vec () =
  let m = Csr.of_dense [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "A x" true
    (Vec.approx_equal (Csr.mul_vec m [| 1.0; 1.0 |]) [| 3.0; 7.0 |]);
  Alcotest.(check bool) "x A" true
    (Vec.approx_equal (Csr.vec_mul [| 1.0; 1.0 |] m) [| 4.0; 6.0 |]);
  Alcotest.check_raises "dim" (Invalid_argument "Csr.mul_vec: dimension mismatch")
    (fun () -> ignore (Csr.mul_vec m [| 1.0 |]))

let test_csr_add_scale_map () =
  let a = Csr.of_dense [| [| 1.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  let b = Csr.of_dense [| [| 0.0; 5.0 |]; [| 0.0; -2.0 |] |] in
  let s = Csr.add a b in
  Alcotest.(check (float 0.0)) "add" 5.0 (Csr.get s 0 1);
  Alcotest.(check int) "add cancels" 2 (Csr.nnz s);
  let d = Csr.scale 2.0 a in
  Alcotest.(check (float 0.0)) "scale" 4.0 (Csr.get d 1 1);
  let z = Csr.scale 0.0 a in
  Alcotest.(check int) "scale by zero empties" 0 (Csr.nnz z);
  let m = Csr.map (fun v -> v -. 1.0) a in
  Alcotest.(check int) "map drops zeros" 1 (Csr.nnz m)

let test_vec_ops () =
  let x = [| 1.0; 2.0; 3.0 |] in
  let y = [| 1.0; 1.0; 1.0 |] in
  Alcotest.(check (float 1e-12)) "dot" 6.0 (Vec.dot x y);
  Vec.axpy ~alpha:2.0 x y;
  Alcotest.(check bool) "axpy" true (Vec.approx_equal y [| 3.0; 5.0; 7.0 |]);
  Vec.normalize1 y;
  Alcotest.(check (float 1e-12)) "normalize" 1.0 (Vec.sum y);
  Alcotest.(check (float 1e-12)) "norm_inf" 3.0 (Vec.norm_inf x);
  Alcotest.check_raises "dot dim"
    (Invalid_argument "Vec.dot: dimension mismatch (3 vs 1)") (fun () ->
      ignore (Vec.dot x [| 1.0 |]))

let test_matrix_market_roundtrip () =
  let m =
    Csr.of_triplets ~rows:3 ~cols:4 [ (0, 1, 1.5); (2, 3, -2.25); (1, 0, 1e-17) ]
  in
  let s = Mdl_sparse.Matrix_market.to_string m in
  let m' = Mdl_sparse.Matrix_market.of_string s in
  Alcotest.check matrix_testable "roundtrip" m m';
  Alcotest.(check int) "dims preserved" 4 (Csr.cols m')

let test_matrix_market_rejects_garbage () =
  let reject name s =
    match Mdl_sparse.Matrix_market.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Failure")
  in
  reject "empty" "";
  reject "bad header" "%%MatrixMarket matrix coordinate complex general\n1 1 0\n";
  reject "bad size" "%%MatrixMarket matrix coordinate real general\n1 x\n";
  reject "oob entry" "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
  reject "count mismatch" "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"

let test_matrix_market_file_roundtrip () =
  let path = Filename.temp_file "mdlump" ".mtx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = Csr.of_triplets ~rows:3 ~cols:3 [ (0, 2, 1.25); (1, 1, -4.0) ] in
      Mdl_sparse.Matrix_market.write_file m path;
      Alcotest.check matrix_testable "file roundtrip" m
        (Mdl_sparse.Matrix_market.read_file path))

let test_identity () =
  let i3 = Csr.identity 3 in
  let x = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "I x = x" true (Vec.approx_equal (Csr.mul_vec i3 x) x)

(* Random sparse matrix generator for property tests. *)
let gen_csr =
  let open QCheck.Gen in
  let* rows = int_range 1 8 in
  let* cols = int_range 1 8 in
  let* n = int_range 0 20 in
  let+ triplets =
    list_size (return n)
      (triple (int_range 0 (rows - 1)) (int_range 0 (cols - 1))
         (map (fun k -> float_of_int k /. 2.0) (int_range (-6) 6)))
  in
  (rows, cols, triplets)

let arb_csr = QCheck.make ~print:(fun (r, c, t) ->
    Printf.sprintf "%dx%d %s" r c
      (String.concat ";" (List.map (fun (i, j, v) -> Printf.sprintf "(%d,%d,%g)" i j v) t)))
    gen_csr

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:200 ~name:"matrix market roundtrips any csr" arb_csr
      (fun (r, c, t) ->
        let m = Csr.of_triplets ~rows:r ~cols:c t in
        Csr.approx_equal m
          (Mdl_sparse.Matrix_market.of_string (Mdl_sparse.Matrix_market.to_string m)));
    Test.make ~count:100 ~name:"matrix market write_file/read_file roundtrip"
      QCheck.(triple (int_range 1 12) (int_range 1 12) small_nat)
      (fun (rows, cols, seed) ->
        let prng = Mdl_util.Prng.of_seed seed in
        let nnz = Mdl_util.Prng.int prng (rows * cols) in
        let coo = Mdl_oracle.Gen_chain.coo prng ~rows ~cols ~nnz in
        let m = Csr.of_coo coo in
        let path = Filename.temp_file "mdlump_mm" ".mtx" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Mdl_sparse.Matrix_market.write_file m path;
            Csr.approx_equal m (Mdl_sparse.Matrix_market.read_file path)));
    Test.make ~count:300 ~name:"transpose involutive" arb_csr (fun (r, c, t) ->
        let m = Csr.of_triplets ~rows:r ~cols:c t in
        Csr.approx_equal m (Csr.transpose (Csr.transpose m)));
    Test.make ~count:300 ~name:"mul_vec agrees with dense" arb_csr (fun (r, c, t) ->
        let m = Csr.of_triplets ~rows:r ~cols:c t in
        let d = Csr.to_dense m in
        let x = Array.init c (fun j -> float_of_int (j + 1)) in
        let expected =
          Array.init r (fun i ->
              let acc = ref 0.0 in
              for j = 0 to c - 1 do
                acc := !acc +. (d.(i).(j) *. x.(j))
              done;
              !acc)
        in
        Vec.approx_equal (Csr.mul_vec m x) expected);
    Test.make ~count:300 ~name:"vec_mul is mul_vec of transpose" arb_csr
      (fun (r, c, t) ->
        let m = Csr.of_triplets ~rows:r ~cols:c t in
        let x = Array.init r (fun i -> float_of_int i -. 2.0) in
        Vec.approx_equal (Csr.vec_mul x m) (Csr.mul_vec (Csr.transpose m) x));
    Test.make ~count:300 ~name:"row_sums match col_sums of transpose" arb_csr
      (fun (r, c, t) ->
        let m = Csr.of_triplets ~rows:r ~cols:c t in
        Vec.approx_equal (Csr.row_sums m) (Csr.col_sums (Csr.transpose m)));
    Test.make ~count:300 ~name:"add commutes" (pair arb_csr arb_csr)
      (fun ((r, c, t1), (_, _, t2)) ->
        let t2 = List.filter (fun (i, j, _) -> i < r && j < c) t2 in
        let a = Csr.of_triplets ~rows:r ~cols:c t1 in
        let b = Csr.of_triplets ~rows:r ~cols:c t2 in
        Csr.approx_equal (Csr.add a b) (Csr.add b a));
  ]

let tests =
  [
    Alcotest.test_case "coo basics" `Quick test_coo_basics;
    Alcotest.test_case "csr duplicate folding" `Quick test_csr_duplicate_folding;
    Alcotest.test_case "csr cancellation" `Quick test_csr_cancellation;
    Alcotest.test_case "csr get" `Quick test_csr_get;
    Alcotest.test_case "csr sums" `Quick test_csr_sums;
    Alcotest.test_case "csr transpose" `Quick test_csr_transpose;
    Alcotest.test_case "csr mul_vec" `Quick test_csr_mul_vec;
    Alcotest.test_case "csr add/scale/map" `Quick test_csr_add_scale_map;
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "matrix market roundtrip" `Quick test_matrix_market_roundtrip;
    Alcotest.test_case "matrix market rejects garbage" `Quick
      test_matrix_market_rejects_garbage;
    Alcotest.test_case "matrix market file roundtrip" `Quick
      test_matrix_market_file_roundtrip;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

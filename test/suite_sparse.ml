(* Unit and property tests for Mdl_sparse. *)

module Vec = Mdl_sparse.Vec
module Coo = Mdl_sparse.Coo
module Csr = Mdl_sparse.Csr
module Ordering = Mdl_sparse.Ordering

let matrix_testable =
  Alcotest.testable Csr.pp (fun a b -> Csr.approx_equal a b)

let test_coo_basics () =
  let c = Coo.create ~rows:3 ~cols:4 in
  Coo.add c 0 1 2.0;
  Coo.add c 2 3 1.5;
  Coo.add c 0 1 0.0;
  (* zero ignored *)
  Alcotest.(check int) "nnz" 2 (Coo.nnz c);
  Alcotest.check_raises "row oob"
    (Invalid_argument "Coo.add: (3,0) out of bounds for 3x4") (fun () -> Coo.add c 3 0 1.0)

let test_csr_duplicate_folding () =
  let m = Csr.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 0, 2.0); (1, 1, 5.0) ] in
  Alcotest.(check int) "nnz after fold" 2 (Csr.nnz m);
  Alcotest.(check (float 1e-12)) "folded value" 3.0 (Csr.get m 0 0)

let test_csr_cancellation () =
  let m = Csr.of_triplets ~rows:1 ~cols:1 [ (0, 0, 1.0); (0, 0, -1.0) ] in
  Alcotest.(check int) "cancelled entry dropped" 0 (Csr.nnz m)

let test_csr_get () =
  let m = Csr.of_dense [| [| 1.0; 0.0; 2.0 |]; [| 0.0; 3.0; 0.0 |] |] in
  Alcotest.(check (float 0.0)) "get (0,2)" 2.0 (Csr.get m 0 2);
  Alcotest.(check (float 0.0)) "get absent" 0.0 (Csr.get m 1 0);
  Alcotest.check_raises "oob" (Invalid_argument "Csr.get: index out of bounds") (fun () ->
      ignore (Csr.get m 2 0))

let test_csr_sums () =
  let m = Csr.of_dense [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (float 1e-12)) "row sum 0" 3.0 (Csr.row_sum m 0);
  Alcotest.(check bool) "row sums" true (Vec.approx_equal (Csr.row_sums m) [| 3.0; 7.0 |]);
  Alcotest.(check bool) "col sums" true (Vec.approx_equal (Csr.col_sums m) [| 4.0; 6.0 |])

let test_csr_transpose () =
  let m = Csr.of_dense [| [| 1.0; 2.0; 0.0 |]; [| 0.0; 3.0; 4.0 |] |] in
  let mt = Csr.transpose m in
  Alcotest.(check int) "rows" 3 (Csr.rows mt);
  Alcotest.(check (float 0.0)) "entry" 4.0 (Csr.get mt 2 1);
  Alcotest.check matrix_testable "double transpose" m (Csr.transpose mt)

let test_csr_mul_vec () =
  let m = Csr.of_dense [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "A x" true
    (Vec.approx_equal (Csr.mul_vec m [| 1.0; 1.0 |]) [| 3.0; 7.0 |]);
  Alcotest.(check bool) "x A" true
    (Vec.approx_equal (Csr.vec_mul [| 1.0; 1.0 |] m) [| 4.0; 6.0 |]);
  Alcotest.check_raises "dim" (Invalid_argument "Csr.mul_vec: dimension mismatch")
    (fun () -> ignore (Csr.mul_vec m [| 1.0 |]))

let test_csr_add_scale_map () =
  let a = Csr.of_dense [| [| 1.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  let b = Csr.of_dense [| [| 0.0; 5.0 |]; [| 0.0; -2.0 |] |] in
  let s = Csr.add a b in
  Alcotest.(check (float 0.0)) "add" 5.0 (Csr.get s 0 1);
  Alcotest.(check int) "add cancels" 2 (Csr.nnz s);
  let d = Csr.scale 2.0 a in
  Alcotest.(check (float 0.0)) "scale" 4.0 (Csr.get d 1 1);
  let z = Csr.scale 0.0 a in
  Alcotest.(check int) "scale by zero empties" 0 (Csr.nnz z);
  let m = Csr.map (fun v -> v -. 1.0) a in
  Alcotest.(check int) "map drops zeros" 1 (Csr.nnz m)

let test_vec_ops () =
  let x = [| 1.0; 2.0; 3.0 |] in
  let y = [| 1.0; 1.0; 1.0 |] in
  Alcotest.(check (float 1e-12)) "dot" 6.0 (Vec.dot x y);
  Vec.axpy ~alpha:2.0 x y;
  Alcotest.(check bool) "axpy" true (Vec.approx_equal y [| 3.0; 5.0; 7.0 |]);
  Vec.normalize1 y;
  Alcotest.(check (float 1e-12)) "normalize" 1.0 (Vec.sum y);
  Alcotest.(check (float 1e-12)) "norm_inf" 3.0 (Vec.norm_inf x);
  Alcotest.check_raises "dot dim"
    (Invalid_argument "Vec.dot: dimension mismatch (3 vs 1)") (fun () ->
      ignore (Vec.dot x [| 1.0 |]))

let test_matrix_market_roundtrip () =
  let m =
    Csr.of_triplets ~rows:3 ~cols:4 [ (0, 1, 1.5); (2, 3, -2.25); (1, 0, 1e-17) ]
  in
  let s = Mdl_sparse.Matrix_market.to_string m in
  let m' = Mdl_sparse.Matrix_market.of_string s in
  Alcotest.check matrix_testable "roundtrip" m m';
  Alcotest.(check int) "dims preserved" 4 (Csr.cols m')

let test_matrix_market_rejects_garbage () =
  let reject name s =
    match Mdl_sparse.Matrix_market.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Failure")
  in
  reject "empty" "";
  reject "bad header" "%%MatrixMarket matrix coordinate complex general\n1 1 0\n";
  reject "bad size" "%%MatrixMarket matrix coordinate real general\n1 x\n";
  reject "oob entry" "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
  reject "count mismatch" "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"

let test_matrix_market_file_roundtrip () =
  let path = Filename.temp_file "mdlump" ".mtx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = Csr.of_triplets ~rows:3 ~cols:3 [ (0, 2, 1.25); (1, 1, -4.0) ] in
      Mdl_sparse.Matrix_market.write_file m path;
      Alcotest.check matrix_testable "file roundtrip" m
        (Mdl_sparse.Matrix_market.read_file path))

let test_of_entry_iter_basics () =
  let m =
    Csr.of_entry_iter ~rows:2 ~cols:3 (fun f ->
        f 1 2 4.0;
        f 0 0 1.0;
        f 1 2 (-4.0);
        f 0 2 2.5;
        f 0 0 0.5)
  in
  Alcotest.(check int) "nnz (duplicates folded, cancellation dropped)" 2 (Csr.nnz m);
  Alcotest.(check (float 0.0)) "folded value" 1.5 (Csr.get m 0 0);
  Alcotest.(check (float 0.0)) "plain value" 2.5 (Csr.get m 0 2);
  Alcotest.check_raises "oob entry"
    (Invalid_argument "Csr.of_entry_iter: (2,0) out of bounds for 2x3") (fun () ->
      ignore (Csr.of_entry_iter ~rows:2 ~cols:3 (fun f -> f 2 0 1.0)));
  let calls = ref 0 in
  Alcotest.check_raises "non-repeatable iterator"
    (Invalid_argument "Csr.of_entry_iter: iteration is not repeatable") (fun () ->
      ignore
        (Csr.of_entry_iter ~rows:1 ~cols:1 (fun f ->
             incr calls;
             if !calls = 2 then f 0 0 1.0)))

let test_csr_permute () =
  let m = Csr.of_dense [| [| 1.0; 2.0; 0.0 |]; [| 0.0; 0.0; 3.0 |]; [| 4.0; 0.0; 5.0 |] |] in
  let perm = [| 2; 0; 1 |] in
  let b = Csr.permute m ~perm in
  for i = 0 to 2 do
    for j = 0 to 2 do
      Alcotest.(check (float 0.0))
        (Printf.sprintf "B(%d,%d) = A(perm i, perm j)" i j)
        (Csr.get m perm.(i) perm.(j))
        (Csr.get b i j)
    done
  done;
  Alcotest.check_raises "not square" (Invalid_argument "Csr.permute: matrix is not square")
    (fun () ->
      ignore (Csr.permute (Csr.of_dense [| [| 1.0; 2.0 |] |]) ~perm:[| 0 |]));
  Alcotest.check_raises "duplicate index" (Invalid_argument "Csr.permute: not a permutation")
    (fun () -> ignore (Csr.permute m ~perm:[| 0; 0; 1 |]))

let test_csr_diagonal () =
  let m = Csr.of_dense [| [| 1.5; 2.0 |]; [| 0.0; 0.0 |] |] in
  Alcotest.(check bool) "diagonal" true
    (Vec.approx_equal (Csr.diagonal m) [| 1.5; 0.0 |]);
  Alcotest.check_raises "not square"
    (Invalid_argument "Csr.diagonal: matrix is not square") (fun () ->
      ignore (Csr.diagonal (Csr.of_dense [| [| 1.0; 2.0 |] |])))

let test_gather_scatter () =
  let x = [| 10.0; 20.0; 30.0 |] in
  let perm = [| 2; 0; 1 |] in
  Alcotest.(check bool) "gather pulls" true
    (Vec.approx_equal (Vec.gather x perm) [| 30.0; 10.0; 20.0 |]);
  Alcotest.(check bool) "scatter pushes back" true
    (Vec.approx_equal (Vec.scatter (Vec.gather x perm) perm) x);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Vec.gather: permutation length mismatch (2 vs 3)") (fun () ->
      ignore (Vec.gather x [| 0; 1 |]))

(* A path graph relabelled at random: reverse Cuthill–McKee must
   recover a bandwidth-1 ordering (the path itself). *)
let test_rcm_path_bandwidth () =
  let n = 9 in
  let labels = [| 4; 7; 0; 8; 2; 6; 1; 5; 3 |] in
  let triplets =
    List.concat
      (List.init (n - 1) (fun i ->
           [ (labels.(i), labels.(i + 1), 1.0); (labels.(i + 1), labels.(i), 2.0) ]))
  in
  let m = Csr.of_triplets ~rows:n ~cols:n triplets in
  let perm = Ordering.rcm m in
  let sorted = Array.copy perm in
  Array.sort compare sorted;
  Alcotest.(check bool) "perm is a permutation" true
    (sorted = Array.init n Fun.id);
  Alcotest.(check int) "path reordered to bandwidth 1" 1
    (Ordering.bandwidth (Csr.permute m ~perm))

let test_ordering_inverse () =
  let perm = [| 3; 1; 0; 2 |] in
  let inv = Ordering.inverse perm in
  Array.iteri (fun k o -> Alcotest.(check int) "inv(perm k) = k" k inv.(o)) perm;
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Ordering.inverse: not a permutation") (fun () ->
      ignore (Ordering.inverse [| 0; 0 |]))

let test_identity () =
  let i3 = Csr.identity 3 in
  let x = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "I x = x" true (Vec.approx_equal (Csr.mul_vec i3 x) x)

(* Random sparse matrix generator for property tests. *)
let gen_csr =
  let open QCheck.Gen in
  let* rows = int_range 1 8 in
  let* cols = int_range 1 8 in
  let* n = int_range 0 20 in
  let+ triplets =
    list_size (return n)
      (triple (int_range 0 (rows - 1)) (int_range 0 (cols - 1))
         (map (fun k -> float_of_int k /. 2.0) (int_range (-6) 6)))
  in
  (rows, cols, triplets)

let arb_csr = QCheck.make ~print:(fun (r, c, t) ->
    Printf.sprintf "%dx%d %s" r c
      (String.concat ";" (List.map (fun (i, j, v) -> Printf.sprintf "(%d,%d,%g)" i j v) t)))
    gen_csr

(* Random square matrix + shuffle seed, for permutation properties. *)
let gen_square =
  let open QCheck.Gen in
  let* n = int_range 1 10 in
  let* nt = int_range 0 30 in
  let* triplets =
    list_size (return nt)
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
         (map (fun k -> float_of_int k /. 2.0) (int_range (-6) 6)))
  in
  let+ seed = small_nat in
  (n, triplets, seed)

let arb_square =
  QCheck.make
    ~print:(fun (n, t, seed) ->
      Printf.sprintf "%dx%d seed %d %s" n n seed
        (String.concat ";"
           (List.map (fun (i, j, v) -> Printf.sprintf "(%d,%d,%g)" i j v) t)))
    gen_square

let random_perm n seed =
  let prng = Mdl_util.Prng.of_seed seed in
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Mdl_util.Prng.int prng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let qcheck_tests =
  let open QCheck in
  [
    (* The halves value alphabet keeps duplicate sums exact, and both
       constructors fold duplicates in emission order, so the two builds
       must agree bit-for-bit — structure and values. *)
    Test.make ~count:300 ~name:"of_entry_iter equals of_coo exactly" arb_csr
      (fun (r, c, t) ->
        let via_coo = Csr.of_triplets ~rows:r ~cols:c t in
        let via_iter =
          Csr.of_entry_iter ~rows:r ~cols:c (fun f ->
              List.iter (fun (i, j, v) -> f i j v) t)
        in
        Csr.equal via_coo via_iter);
    Test.make ~count:300 ~name:"permute relabels entries" arb_square
      (fun (n, t, seed) ->
        let m = Csr.of_triplets ~rows:n ~cols:n t in
        let perm = random_perm n seed in
        let b = Csr.permute m ~perm in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if Csr.get b i j <> Csr.get m perm.(i) perm.(j) then ok := false
          done
        done;
        !ok);
    Test.make ~count:300 ~name:"permute by inverse roundtrips" arb_square
      (fun (n, t, seed) ->
        let m = Csr.of_triplets ~rows:n ~cols:n t in
        let perm = random_perm n seed in
        Csr.equal m (Csr.permute (Csr.permute m ~perm) ~perm:(Ordering.inverse perm)));
    Test.make ~count:300 ~name:"rcm returns a valid permutation" arb_square
      (fun (n, t, _) ->
        let m = Csr.of_triplets ~rows:n ~cols:n t in
        let perm = Ordering.rcm m in
        let sorted = Array.copy perm in
        Array.sort compare sorted;
        sorted = Array.init n Fun.id);
    Test.make ~count:300 ~name:"rcm never worsens a path's bandwidth to > 1"
      (int_range 2 40) (fun n ->
        (* Any relabelled path graph must come back to bandwidth 1. *)
        let labels = random_perm n (n * 31 + 7) in
        let triplets =
          List.concat
            (List.init (n - 1) (fun i ->
                 [
                   (labels.(i), labels.(i + 1), 1.0);
                   (labels.(i + 1), labels.(i), 1.0);
                 ]))
        in
        let m = Csr.of_triplets ~rows:n ~cols:n triplets in
        Ordering.bandwidth (Csr.permute m ~perm:(Ordering.rcm m)) = 1);
    Test.make ~count:300 ~name:"scatter inverts gather" arb_square
      (fun (n, _, seed) ->
        let perm = random_perm n seed in
        let x = Array.init n (fun i -> float_of_int (i + 1) /. 2.0) in
        Vec.scatter (Vec.gather x perm) perm = x
        && Vec.gather (Vec.scatter x perm) perm = x);
    Test.make ~count:200 ~name:"matrix market roundtrips any csr" arb_csr
      (fun (r, c, t) ->
        let m = Csr.of_triplets ~rows:r ~cols:c t in
        Csr.approx_equal m
          (Mdl_sparse.Matrix_market.of_string (Mdl_sparse.Matrix_market.to_string m)));
    Test.make ~count:100 ~name:"matrix market write_file/read_file roundtrip"
      QCheck.(triple (int_range 1 12) (int_range 1 12) small_nat)
      (fun (rows, cols, seed) ->
        let prng = Mdl_util.Prng.of_seed seed in
        let nnz = Mdl_util.Prng.int prng (rows * cols) in
        let coo = Mdl_oracle.Gen_chain.coo prng ~rows ~cols ~nnz in
        let m = Csr.of_coo coo in
        let path = Filename.temp_file "mdlump_mm" ".mtx" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Mdl_sparse.Matrix_market.write_file m path;
            Csr.approx_equal m (Mdl_sparse.Matrix_market.read_file path)));
    Test.make ~count:300 ~name:"transpose involutive" arb_csr (fun (r, c, t) ->
        let m = Csr.of_triplets ~rows:r ~cols:c t in
        Csr.approx_equal m (Csr.transpose (Csr.transpose m)));
    Test.make ~count:300 ~name:"mul_vec agrees with dense" arb_csr (fun (r, c, t) ->
        let m = Csr.of_triplets ~rows:r ~cols:c t in
        let d = Csr.to_dense m in
        let x = Array.init c (fun j -> float_of_int (j + 1)) in
        let expected =
          Array.init r (fun i ->
              let acc = ref 0.0 in
              for j = 0 to c - 1 do
                acc := !acc +. (d.(i).(j) *. x.(j))
              done;
              !acc)
        in
        Vec.approx_equal (Csr.mul_vec m x) expected);
    Test.make ~count:300 ~name:"vec_mul is mul_vec of transpose" arb_csr
      (fun (r, c, t) ->
        let m = Csr.of_triplets ~rows:r ~cols:c t in
        let x = Array.init r (fun i -> float_of_int i -. 2.0) in
        Vec.approx_equal (Csr.vec_mul x m) (Csr.mul_vec (Csr.transpose m) x));
    Test.make ~count:300 ~name:"row_sums match col_sums of transpose" arb_csr
      (fun (r, c, t) ->
        let m = Csr.of_triplets ~rows:r ~cols:c t in
        Vec.approx_equal (Csr.row_sums m) (Csr.col_sums (Csr.transpose m)));
    Test.make ~count:300 ~name:"add commutes" (pair arb_csr arb_csr)
      (fun ((r, c, t1), (_, _, t2)) ->
        let t2 = List.filter (fun (i, j, _) -> i < r && j < c) t2 in
        let a = Csr.of_triplets ~rows:r ~cols:c t1 in
        let b = Csr.of_triplets ~rows:r ~cols:c t2 in
        Csr.approx_equal (Csr.add a b) (Csr.add b a));
  ]

let tests =
  [
    Alcotest.test_case "coo basics" `Quick test_coo_basics;
    Alcotest.test_case "csr duplicate folding" `Quick test_csr_duplicate_folding;
    Alcotest.test_case "csr cancellation" `Quick test_csr_cancellation;
    Alcotest.test_case "csr get" `Quick test_csr_get;
    Alcotest.test_case "csr sums" `Quick test_csr_sums;
    Alcotest.test_case "csr transpose" `Quick test_csr_transpose;
    Alcotest.test_case "csr mul_vec" `Quick test_csr_mul_vec;
    Alcotest.test_case "csr add/scale/map" `Quick test_csr_add_scale_map;
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    Alcotest.test_case "of_entry_iter basics" `Quick test_of_entry_iter_basics;
    Alcotest.test_case "csr permute" `Quick test_csr_permute;
    Alcotest.test_case "csr diagonal" `Quick test_csr_diagonal;
    Alcotest.test_case "gather/scatter" `Quick test_gather_scatter;
    Alcotest.test_case "rcm path bandwidth" `Quick test_rcm_path_bandwidth;
    Alcotest.test_case "ordering inverse" `Quick test_ordering_inverse;
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "matrix market roundtrip" `Quick test_matrix_market_roundtrip;
    Alcotest.test_case "matrix market rejects garbage" `Quick
      test_matrix_market_rejects_garbage;
    Alcotest.test_case "matrix market file roundtrip" `Quick
      test_matrix_market_file_roundtrip;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

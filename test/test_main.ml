let () =
  Alcotest.run "mdlump"
    [
      ("util", Suite_util.tests);
      ("obs", Suite_obs.tests);
      ("sparse", Suite_sparse.tests);
      ("ctmc", Suite_ctmc.tests);
      ("partition", Suite_partition.tests);
      ("lumping", Suite_lumping.tests);
      ("md", Suite_md.tests);
      ("core", Suite_core.tests);
      ("san", Suite_san.tests);
      ("models", Suite_models.tests);
      ("errors", Suite_errors.tests);
      ("oracle", Suite_oracle.tests);
      ("parallel", Test_parallel.tests);
      ("serve", Suite_serve.tests);
    ]

(* Tests for CTMCs, MRPs, solvers and measures. *)

module Vec = Mdl_sparse.Vec
module Csr = Mdl_sparse.Csr
module Ctmc = Mdl_ctmc.Ctmc
module Mrp = Mdl_ctmc.Mrp
module Solver = Mdl_ctmc.Solver
module Measures = Mdl_ctmc.Measures

(* Birth-death chain on n states with birth rate lam, death rate mu. *)
let birth_death n lam mu =
  let triplets = ref [] in
  for i = 0 to n - 2 do
    triplets := (i, i + 1, lam) :: (i + 1, i, mu) :: !triplets
  done;
  Ctmc.of_triplets n !triplets

let test_generator_row_sums_zero () =
  let c = birth_death 5 2.0 3.0 in
  let q = Ctmc.generator c in
  Array.iter
    (fun s -> Alcotest.(check (float 1e-12)) "row sum" 0.0 s)
    (Csr.row_sums q)

let test_rejects_negative_rate () =
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Ctmc.of_rates: negative rate -1 at (0,1)") (fun () ->
      ignore (Ctmc.of_triplets 2 [ (0, 1, -1.0) ]))

let test_rejects_non_square () =
  Alcotest.check_raises "not square"
    (Invalid_argument "Ctmc.of_rates: matrix is not square") (fun () ->
      ignore (Ctmc.of_rates (Csr.of_triplets ~rows:2 ~cols:3 [])))

let test_uniformized_stochastic () =
  let c = birth_death 6 1.0 4.0 in
  let p, lambda = Ctmc.uniformized c in
  Alcotest.(check bool) "lambda covers max rate" true (lambda >= Ctmc.max_exit_rate c);
  Array.iter
    (fun s -> Alcotest.(check (float 1e-12)) "P row sum 1" 1.0 s)
    (Csr.row_sums p);
  Csr.iter (fun _ _ v -> Alcotest.(check bool) "P nonneg" true (v >= 0.0)) p

let test_uniformized_bad_lambda () =
  let c = birth_death 3 5.0 5.0 in
  Alcotest.check_raises "lambda too small"
    (Invalid_argument "Ctmc.uniformized: lambda below max exit rate") (fun () ->
      ignore (Ctmc.uniformized ~lambda:0.1 c))

(* Closed form: stationary of birth-death is geometric in rho = lam/mu. *)
let birth_death_stationary n lam mu =
  let rho = lam /. mu in
  let pi = Array.init n (fun i -> rho ** float_of_int i) in
  Vec.normalize1 pi;
  pi

let test_steady_state_birth_death () =
  let n = 8 and lam = 2.0 and mu = 3.0 in
  let c = birth_death n lam mu in
  let pi, stats = Solver.steady_state ~tol:1e-14 c in
  Alcotest.(check bool) "converged" true stats.Solver.converged;
  Alcotest.(check bool) "matches closed form" true
    (Vec.diff_inf pi (birth_death_stationary n lam mu) < 1e-9)

let test_gauss_seidel_matches_power () =
  let c = birth_death 10 1.5 2.5 in
  let pi_p, _ = Solver.steady_state ~tol:1e-14 c in
  let pi_gs, stats = Solver.steady_state_gauss_seidel ~tol:1e-14 c in
  Alcotest.(check bool) "gs converged" true stats.Solver.converged;
  Alcotest.(check bool) "gs = power" true (Vec.diff_inf pi_p pi_gs < 1e-8)

(* Regression: the sweep used to skip zero-diagonal states silently, so
   absorbing states kept their stale 1/n initial mass and the returned
   distribution was quietly wrong.  Now the degenerate chain is rejected
   up front, naming the offending state. *)
let test_gauss_seidel_rejects_absorbing () =
  let absorbing = Ctmc.of_triplets 3 [ (0, 1, 1.0); (1, 2, 1.0) ] in
  Alcotest.check_raises "absorbing state"
    (Invalid_argument
       "Solver.steady_state_gauss_seidel: absorbing state 2 (zero generator diagonal)")
    (fun () -> ignore (Solver.steady_state_gauss_seidel absorbing));
  (* A state with only a self loop also has a zero generator diagonal. *)
  let self_loop_only = Ctmc.of_triplets 2 [ (0, 1, 1.0); (1, 1, 5.0) ] in
  Alcotest.check_raises "self-loop-only state"
    (Invalid_argument
       "Solver.steady_state_gauss_seidel: absorbing state 1 (zero generator diagonal)")
    (fun () -> ignore (Solver.steady_state_gauss_seidel self_loop_only));
  Alcotest.check_raises "bad relaxation factor"
    (Invalid_argument "Solver.steady_state_gauss_seidel: relax must be in (0, 1]")
    (fun () ->
      ignore (Solver.steady_state_gauss_seidel ~relax:1.5 (birth_death 3 1.0 1.0)))

let test_krylov_birth_death () =
  let n = 8 and lam = 2.0 and mu = 3.0 in
  let c = birth_death n lam mu in
  let expected = birth_death_stationary n lam mu in
  let pi, stats = Solver.steady_state_krylov ~tol:1e-13 c in
  Alcotest.(check bool) "converged" true stats.Solver.converged;
  Alcotest.(check bool) "matches closed form" true (Vec.diff_inf pi expected < 1e-9);
  let pi_p, stats_p = Solver.steady_state ~tol:1e-13 c in
  Alcotest.(check bool) "fewer iterations than power" true
    (stats.Solver.iterations <= stats_p.Solver.iterations);
  Alcotest.(check bool) "matches power" true (Vec.diff_inf pi pi_p < 1e-9);
  (* The RCM-ordered solve must come back in the original numbering. *)
  let pi_rcm, stats_rcm = Solver.steady_state_krylov ~tol:1e-13 ~ordering:Solver.Rcm c in
  Alcotest.(check bool) "rcm converged" true stats_rcm.Solver.converged;
  Alcotest.(check bool) "rcm matches natural" true (Vec.diff_inf pi pi_rcm < 1e-9)

let test_krylov_trivial_chain () =
  (* One state: the normalisation column makes the 1x1 system [1] x = 1. *)
  let c = Ctmc.of_triplets 1 [ (0, 0, 2.0) ] in
  let pi, stats = Solver.steady_state_krylov c in
  Alcotest.(check bool) "converged" true stats.Solver.converged;
  Alcotest.(check (float 0.0)) "pi = [1]" 1.0 pi.(0)

let test_steady_state_with_dispatch () =
  let c = birth_death 6 1.0 2.0 in
  let expected = birth_death_stationary 6 1.0 2.0 in
  List.iter
    (fun m ->
      let pi, stats = Solver.steady_state_with ~tol:1e-13 m c in
      Alcotest.(check bool) (Solver.method_name m ^ " converged") true
        stats.Solver.converged;
      Alcotest.(check bool) (Solver.method_name m ^ " matches closed form") true
        (Vec.diff_inf pi expected < 1e-8))
    [ Solver.Power; Solver.Gauss_seidel; Solver.Krylov ]

let poisson_pmf qt k =
  (* e^{-qt} qt^k / k! computed stably in log space. *)
  let log_fact = ref 0.0 in
  for i = 2 to k do
    log_fact := !log_fact +. log (float_of_int i)
  done;
  exp ((float_of_int k *. log qt) -. qt -. !log_fact)

let test_poisson_weights_match_pmf () =
  let qt = 2.5 and epsilon = 1e-12 in
  let w = Solver.poisson_weights ~epsilon ~qt in
  Array.iteri
    (fun k wk ->
      Alcotest.(check (float 1e-10)) (Printf.sprintf "w(%d)" k) (poisson_pmf qt k) wk)
    w;
  Alcotest.(check bool) "covers the mass" true
    (Array.fold_left ( +. ) 0.0 w >= 1.0 -. 1e-9)

(* Regression: the weights used to be normalised by the full untruncated
   sum, so they under-counted the retained mass by up to epsilon.  They
   must now sum to exactly 1 over the truncated support, also for large
   qt and loose epsilon (where the truncation actually bites). *)
let test_poisson_weights_renormalised () =
  List.iter
    (fun (qt, epsilon) ->
      let w = Solver.poisson_weights ~epsilon ~qt in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "sum to 1 (qt %g, eps %g)" qt epsilon)
        1.0
        (Array.fold_left ( +. ) 0.0 w);
      let mode = int_of_float qt in
      let r_max = mode + 10 + int_of_float ((8.0 *. sqrt (qt +. 1.0)) +. qt) in
      Alcotest.(check bool) "within the truncation bound" true
        (Array.length w <= r_max + 1))
    [ (0.5, 1e-12); (4.0, 1e-6); (57.3, 1e-12); (400.0, 1e-4) ];
  let w0 = Solver.poisson_weights ~epsilon:1e-12 ~qt:0.0 in
  Alcotest.(check bool) "qt = 0 is the point mass" true (w0 = [| 1.0 |])

let test_transient_zero_time () =
  let c = birth_death 4 1.0 1.0 in
  let pi0 = Mrp.point_initial 4 2 in
  let pi = Solver.transient ~t:0.0 c pi0 in
  Alcotest.(check bool) "t=0 returns pi0" true (Vec.approx_equal pi pi0)

let test_transient_conserves_mass () =
  let c = birth_death 5 2.0 1.0 in
  let pi0 = Mrp.point_initial 5 0 in
  List.iter
    (fun t ->
      let pi = Solver.transient ~t c pi0 in
      Alcotest.(check (float 1e-9)) "mass 1" 1.0 (Vec.sum pi);
      Array.iter (fun p -> Alcotest.(check bool) "nonneg" true (p >= -1e-12)) pi)
    [ 0.01; 0.5; 1.0; 10.0 ]

let test_transient_converges_to_steady_state () =
  let c = birth_death 5 1.0 2.0 in
  let pi0 = Mrp.point_initial 5 4 in
  let pi_t = Solver.transient ~t:200.0 c pi0 in
  let pi_inf, _ = Solver.steady_state ~tol:1e-14 c in
  Alcotest.(check bool) "transient -> stationary" true (Vec.diff_inf pi_t pi_inf < 1e-7)

let test_transient_two_state_closed_form () =
  (* For a two-state chain with rates a (0->1) and b (1->0), starting in 0:
     p1(t) = a/(a+b) (1 - e^{-(a+b)t}). *)
  let a = 2.0 and b = 3.0 in
  let c = Ctmc.of_triplets 2 [ (0, 1, a); (1, 0, b) ] in
  let pi0 = Mrp.point_initial 2 0 in
  List.iter
    (fun t ->
      let pi = Solver.transient ~t c pi0 in
      let expected = a /. (a +. b) *. (1.0 -. exp (-.(a +. b) *. t)) in
      Alcotest.(check (float 1e-9)) "closed form" expected pi.(1))
    [ 0.1; 0.3; 1.0; 2.5 ]

let test_irreducibility () =
  Alcotest.(check bool) "birth-death irreducible" true (Ctmc.is_irreducible (birth_death 4 1.0 1.0));
  let absorbing = Ctmc.of_triplets 3 [ (0, 1, 1.0); (1, 2, 1.0) ] in
  Alcotest.(check bool) "absorbing chain reducible" false (Ctmc.is_irreducible absorbing)

let test_self_loops_do_not_change_generator () =
  let without = Ctmc.of_triplets 2 [ (0, 1, 1.0); (1, 0, 2.0) ] in
  let with_loops = Ctmc.of_triplets 2 [ (0, 1, 1.0); (1, 0, 2.0); (0, 0, 5.0); (1, 1, 7.0) ] in
  Alcotest.(check bool) "Q identical" true
    (Csr.approx_equal (Ctmc.generator without) (Ctmc.generator with_loops))

let test_mrp_validation () =
  let c = birth_death 3 1.0 1.0 in
  Alcotest.check_raises "bad init sum"
    (Invalid_argument "Mrp.make: initial distribution sums to 2, not 1") (fun () ->
      ignore (Mrp.make ~ctmc:c ~rewards:[| 0.; 0.; 0. |] ~initial:[| 1.0; 1.0; 0.0 |]));
  Alcotest.check_raises "negative init"
    (Invalid_argument "Mrp.make: negative initial probability") (fun () ->
      ignore (Mrp.make ~ctmc:c ~rewards:[| 0.; 0.; 0. |] ~initial:[| 2.0; -1.0; 0.0 |]));
  Alcotest.check_raises "reward size"
    (Invalid_argument "Mrp.make: reward vector size mismatch") (fun () ->
      ignore (Mrp.make ~ctmc:c ~rewards:[| 0.0 |] ~initial:(Mrp.uniform_initial 3)))

let test_measures () =
  (* Availability of a 2-state machine: up (reward 1), down (reward 0). *)
  let fail = 1.0 and repair = 9.0 in
  let c = Ctmc.of_triplets 2 [ (0, 1, fail); (1, 0, repair) ] in
  let m = Mrp.make ~ctmc:c ~rewards:[| 1.0; 0.0 |] ~initial:(Mrp.point_initial 2 0) in
  let avail = Measures.steady_state_reward ~tol:1e-14 m in
  Alcotest.(check (float 1e-9)) "availability" (repair /. (fail +. repair)) avail;
  let tr = Measures.transient_reward ~t:0.0 m in
  Alcotest.(check (float 1e-12)) "transient reward at 0" 1.0 tr;
  let acc = Measures.accumulated_reward ~t:1.0 ~steps:128 m in
  Alcotest.(check bool) "accumulated in (0.9, 1.0)" true (acc > 0.9 && acc < 1.0)

(* --- DTMCs --- *)

let test_dtmc_validation () =
  Alcotest.check_raises "not square"
    (Invalid_argument "Dtmc.of_matrix: matrix is not square") (fun () ->
      ignore (Mdl_ctmc.Dtmc.of_matrix (Csr.of_triplets ~rows:1 ~cols:2 [ (0, 0, 1.0) ])));
  Alcotest.check_raises "bad row sum"
    (Invalid_argument "Dtmc.of_matrix: row 0 sums to 0.5, not 1") (fun () ->
      ignore (Mdl_ctmc.Dtmc.of_matrix (Csr.of_dense [| [| 0.5 |] |])));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dtmc.of_matrix: negative entry -1 at (0,0)") (fun () ->
      ignore (Mdl_ctmc.Dtmc.of_matrix (Csr.of_dense [| [| -1.0; 2.0 |]; [| 0.5; 0.5 |] |])))

let test_dtmc_step_and_stationary () =
  let p = Mdl_ctmc.Dtmc.of_matrix (Csr.of_dense [| [| 0.5; 0.5 |]; [| 0.25; 0.75 |] |]) in
  let pi1 = Mdl_ctmc.Dtmc.step p [| 1.0; 0.0 |] in
  Alcotest.(check bool) "one step" true (Vec.approx_equal pi1 [| 0.5; 0.5 |]);
  let pi2 = Mdl_ctmc.Dtmc.distribution_after p 2 [| 1.0; 0.0 |] in
  Alcotest.(check bool) "two steps" true (Vec.approx_equal pi2 [| 0.375; 0.625 |]);
  let pi, stats = Mdl_ctmc.Dtmc.stationary ~tol:1e-14 p in
  Alcotest.(check bool) "converged" true stats.Solver.converged;
  (* stationary of this chain: (1/3, 2/3) *)
  Alcotest.(check bool) "stationary" true
    (Vec.diff_inf pi [| 1.0 /. 3.0; 2.0 /. 3.0 |] < 1e-9)

let test_dtmc_embedded () =
  let c = Ctmc.of_triplets 3 [ (0, 1, 1.0); (0, 2, 3.0); (1, 0, 2.0) ] in
  let p = Mdl_ctmc.Dtmc.embedded_of_ctmc c in
  let m = Mdl_ctmc.Dtmc.matrix p in
  Alcotest.(check (float 1e-12)) "jump probability" 0.25 (Csr.get m 0 1);
  Alcotest.(check (float 1e-12)) "jump probability" 0.75 (Csr.get m 0 2);
  (* state 2 is absorbing -> self loop *)
  Alcotest.(check (float 1e-12)) "absorbing self-loop" 1.0 (Csr.get m 2 2)

let test_dtmc_uniformized_agrees () =
  let c = birth_death 5 1.0 2.0 in
  let p, _ = Mdl_ctmc.Dtmc.uniformized_of_ctmc c in
  let pi_d, _ = Mdl_ctmc.Dtmc.stationary ~tol:1e-14 p in
  let pi_c, _ = Solver.steady_state ~tol:1e-14 c in
  Alcotest.(check bool) "same stationary" true (Vec.diff_inf pi_d pi_c < 1e-9)

(* --- absorption analysis --- *)

let test_mtta_linear_chain () =
  (* 0 -> 1 -> 2 (absorbing) at rate lam: t(1) = 1/lam, t(0) = 2/lam. *)
  let lam = 4.0 in
  let c = Ctmc.of_triplets 3 [ (0, 1, lam); (1, 2, lam) ] in
  let t, stats = Mdl_ctmc.Absorption.mean_time_to_absorption c ~absorbing:(fun i -> i = 2) in
  Alcotest.(check bool) "converged" true stats.Solver.converged;
  Alcotest.(check (float 1e-9)) "t(2)" 0.0 t.(2);
  Alcotest.(check (float 1e-9)) "t(1)" (1.0 /. lam) t.(1);
  Alcotest.(check (float 1e-9)) "t(0)" (2.0 /. lam) t.(0)

let test_mtta_with_repair () =
  (* up <-> degraded -> down(absorbing): closed form MTTF from up.
     up -f-> degraded, degraded -r-> up, degraded -g-> down.
     t(deg) = (1 + r t(up)) / (r+g); t(up) = 1/f + t(deg)
     => t(up) = (r + g + f) / (f g). *)
  let f = 0.5 and r = 3.0 and g = 0.2 in
  let c = Ctmc.of_triplets 3 [ (0, 1, f); (1, 0, r); (1, 2, g) ] in
  let t, _ = Mdl_ctmc.Absorption.mean_time_to_absorption c ~absorbing:(fun i -> i = 2) in
  Alcotest.(check (float 1e-8)) "MTTF closed form" ((r +. g +. f) /. (f *. g)) t.(0)

let test_mtta_validation () =
  let c = Ctmc.of_triplets 2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  Alcotest.check_raises "no absorbing"
    (Invalid_argument "Absorption.mean_time_to_absorption: no absorbing state")
    (fun () ->
      ignore (Mdl_ctmc.Absorption.mean_time_to_absorption c ~absorbing:(fun _ -> false)));
  (* state 2 cannot reach the absorbing state 3 *)
  let c' = Ctmc.of_triplets 4 [ (0, 1, 1.0); (1, 3, 1.0); (2, 2, 1.0) ] in
  Alcotest.check_raises "unreachable absorbing"
    (Invalid_argument
       "Absorption.mean_time_to_absorption: state 2 cannot reach an absorbing state")
    (fun () ->
      ignore (Mdl_ctmc.Absorption.mean_time_to_absorption c' ~absorbing:(fun i -> i = 3)))

let test_absorption_probabilities () =
  (* gambler's ruin on {0..4}, p = q: hit 4 before 0 from i is i/4. *)
  let c =
    Ctmc.of_triplets 5
      [ (1, 0, 1.0); (1, 2, 1.0); (2, 1, 1.0); (2, 3, 1.0); (3, 2, 1.0); (3, 4, 1.0) ]
  in
  let h, stats =
    Mdl_ctmc.Absorption.absorption_probabilities c
      ~absorbing:(fun i -> i = 0 || i = 4)
      ~target:(fun i -> i = 4)
  in
  Alcotest.(check bool) "converged" true stats.Solver.converged;
  List.iteri
    (fun i expected ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "h(%d)" i) expected h.(i))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  Alcotest.check_raises "target not absorbing"
    (Invalid_argument "Absorption.absorption_probabilities: target state 2 not absorbing")
    (fun () ->
      ignore
        (Mdl_ctmc.Absorption.absorption_probabilities c
           ~absorbing:(fun i -> i = 0 || i = 4)
           ~target:(fun i -> i = 2)))

let test_mtta_agrees_with_transient_tail () =
  (* MTTA equals the integral of the survival probability: cross-check
     against transient analysis on a small random-ish chain. *)
  let c = Ctmc.of_triplets 3 [ (0, 1, 2.0); (1, 0, 1.0); (1, 2, 0.5) ] in
  let absorbing i = i = 2 in
  let t, _ = Mdl_ctmc.Absorption.mean_time_to_absorption c ~absorbing in
  (* integrate P(not absorbed by time u) from 0 with the trapezoid rule *)
  let pi0 = Mrp.point_initial 3 0 in
  let horizon = 60.0 and steps = 6000 in
  let h = horizon /. float_of_int steps in
  let survival u =
    let pi = Solver.transient ~t:u c pi0 in
    1.0 -. pi.(2)
  in
  let acc = ref ((survival 0.0 +. survival horizon) /. 2.0) in
  for k = 1 to steps - 1 do
    acc := !acc +. survival (h *. float_of_int k)
  done;
  Alcotest.(check bool) "integral matches MTTA" true
    (Float.abs ((!acc *. h) -. t.(0)) < 1e-2)

let qcheck_tests =
  let open QCheck in
  let gen_chain =
    Gen.(
      let* n = int_range 2 7 in
      let* triplets =
        list_size (int_range 1 25)
          (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
             (map (fun k -> float_of_int (k + 1)) (int_range 0 4)))
      in
      return (n, triplets))
  in
  let arb_chain =
    make
      ~print:(fun (n, t) ->
        Printf.sprintf "n=%d [%s]" n
          (String.concat ";" (List.map (fun (i, j, v) -> Printf.sprintf "(%d,%d,%g)" i j v) t)))
      gen_chain
  in
  [
    Test.make ~count:200 ~name:"generator rows sum to zero" arb_chain (fun (n, t) ->
        let c = Ctmc.of_triplets n t in
        Array.for_all (fun s -> Float.abs s < 1e-9) (Csr.row_sums (Ctmc.generator c)));
    Test.make ~count:100 ~name:"transient preserves probability mass" arb_chain
      (fun (n, t) ->
        let c = Ctmc.of_triplets n t in
        let pi = Solver.transient ~t:0.7 c (Mrp.uniform_initial n) in
        Float.abs (Vec.sum pi -. 1.0) < 1e-9);
    Test.make ~count:100 ~name:"uniformized matrix is stochastic" arb_chain
      (fun (n, t) ->
        let c = Ctmc.of_triplets n t in
        let p, _ = Ctmc.uniformized c in
        Array.for_all (fun s -> Float.abs (s -. 1.0) < 1e-9) (Csr.row_sums p));
    (* Differential solver agreement: three algorithmically unrelated
       kernels (power iteration, under-relaxed Gauss–Seidel with an RCM
       sweep order, preconditioned BiCGStab) must land on the same
       stationary distribution of a random ergodic chain. *)
    Test.make ~count:40 ~name:"power/gauss-seidel/krylov agree on ergodic chains"
      (make ~print:string_of_int Gen.(int_range 0 9999))
      (fun seed ->
        let spec =
          { Mdl_oracle.Spec.states = 8 + (seed mod 25);
            extra = 2 + (3 * (seed mod 7));
            planted = false;
            seed }
        in
        let c = Mdl_oracle.Gen_chain.ctmc (Mdl_util.Prng.of_seed seed) spec in
        let pi_p, st_p = Solver.steady_state ~tol:1e-13 ~max_iter:200_000 c in
        let pi_g, st_g =
          Solver.steady_state_gauss_seidel ~tol:1e-13 ~max_iter:100_000
            ~ordering:Solver.Rcm ~relax:0.9 c
        in
        let pi_k, st_k =
          Solver.steady_state_krylov ~tol:1e-13 ~max_iter:100_000 c
        in
        st_p.Solver.converged && st_g.Solver.converged && st_k.Solver.converged
        && Vec.diff_inf pi_p pi_g < 1e-6
        && Vec.diff_inf pi_p pi_k < 1e-6);
  ]

let tests =
  [
    Alcotest.test_case "generator row sums" `Quick test_generator_row_sums_zero;
    Alcotest.test_case "rejects negative rate" `Quick test_rejects_negative_rate;
    Alcotest.test_case "rejects non-square" `Quick test_rejects_non_square;
    Alcotest.test_case "uniformized stochastic" `Quick test_uniformized_stochastic;
    Alcotest.test_case "uniformized bad lambda" `Quick test_uniformized_bad_lambda;
    Alcotest.test_case "steady state birth-death" `Quick test_steady_state_birth_death;
    Alcotest.test_case "gauss-seidel matches power" `Quick test_gauss_seidel_matches_power;
    Alcotest.test_case "gauss-seidel rejects absorbing" `Quick
      test_gauss_seidel_rejects_absorbing;
    Alcotest.test_case "krylov birth-death" `Quick test_krylov_birth_death;
    Alcotest.test_case "krylov trivial chain" `Quick test_krylov_trivial_chain;
    Alcotest.test_case "steady_state_with dispatch" `Quick test_steady_state_with_dispatch;
    Alcotest.test_case "poisson weights match pmf" `Quick test_poisson_weights_match_pmf;
    Alcotest.test_case "poisson weights renormalised" `Quick
      test_poisson_weights_renormalised;
    Alcotest.test_case "transient t=0" `Quick test_transient_zero_time;
    Alcotest.test_case "transient mass conservation" `Quick test_transient_conserves_mass;
    Alcotest.test_case "transient -> steady state" `Quick test_transient_converges_to_steady_state;
    Alcotest.test_case "transient closed form" `Quick test_transient_two_state_closed_form;
    Alcotest.test_case "irreducibility" `Quick test_irreducibility;
    Alcotest.test_case "self loops cancel in Q" `Quick test_self_loops_do_not_change_generator;
    Alcotest.test_case "mrp validation" `Quick test_mrp_validation;
    Alcotest.test_case "measures" `Quick test_measures;
    Alcotest.test_case "dtmc validation" `Quick test_dtmc_validation;
    Alcotest.test_case "dtmc step/stationary" `Quick test_dtmc_step_and_stationary;
    Alcotest.test_case "dtmc embedded chain" `Quick test_dtmc_embedded;
    Alcotest.test_case "dtmc uniformized agrees" `Quick test_dtmc_uniformized_agrees;
    Alcotest.test_case "mtta linear chain" `Quick test_mtta_linear_chain;
    Alcotest.test_case "mtta with repair (closed form)" `Quick test_mtta_with_repair;
    Alcotest.test_case "mtta validation" `Quick test_mtta_validation;
    Alcotest.test_case "absorption probabilities" `Quick test_absorption_probabilities;
    Alcotest.test_case "mtta = survival integral" `Slow test_mtta_agrees_with_transient_tail;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

(* Tests for the differential lumping oracle itself (Mdl_oracle).

   Two layers: unit cases pinning the oracle's behaviour on known
   models, and QCheck properties running the full differential check
   (compositional vs state-level lumping) over random specs — the same
   checks bin/fuzz.exe runs, but inside the test suite and with
   shrinking. *)

module Csr = Mdl_sparse.Csr
module Md = Mdl_md.Md
module Prng = Mdl_util.Prng
module Spec = Mdl_oracle.Spec
module Gen_md = Mdl_oracle.Gen_md
module Gen_chain = Mdl_oracle.Gen_chain
module Invariants = Mdl_oracle.Invariants
module Oracle = Mdl_oracle.Oracle
module Qgen = Mdl_oracle.Qcheck_gen

(* A 4-state chain with a planted symmetry: states 2 and 3 are
   interchangeable, so both lumping algorithms must merge them. *)
let planted_chain () =
  Csr.of_triplets ~rows:4 ~cols:4
    [
      (0, 1, 2.0);
      (1, 2, 0.5);
      (1, 3, 0.5);
      (2, 0, 1.0);
      (3, 0, 1.0);
      (2, 3, 1.5);
      (3, 2, 1.5);
    ]

let test_oracle_accepts_planted_chain () =
  List.iter
    (fun mode ->
      let o = Oracle.check_chain mode (planted_chain ()) in
      Alcotest.(check bool) "no violations" true (Oracle.ok o);
      Alcotest.(check int) "four states" 4 o.Oracle.states;
      Alcotest.(check int) "2 and 3 lumped" 3 o.Oracle.flat_classes;
      Alcotest.(check bool) "quotient-agreement ran" true
        (List.mem "quotient-agreement" o.Oracle.checks);
      Alcotest.(check bool) "single-level-equality ran" true
        (List.mem "single-level-equality" o.Oracle.checks);
      Alcotest.(check bool) "stationary-agreement ran" true
        (List.mem "stationary-agreement" o.Oracle.checks))
    [ Oracle.Ordinary; Oracle.Exact ]

let test_oracle_catches_injection () =
  List.iter
    (fun mode ->
      let o = Oracle.check_chain ~inject:0.5 mode (planted_chain ()) in
      Alcotest.(check bool) "injected fault reported" false (Oracle.ok o))
    [ Oracle.Ordinary; Oracle.Exact ]

let test_generation_deterministic () =
  let spec =
    Spec.Kron
      { sizes = [| 2; 3 |]; events = 2; symmetric = true; ring = true; merged = false; seed = 99 }
  in
  let a = Md.to_csr (Gen_md.of_spec spec) and b = Md.to_csr (Gen_md.of_spec spec) in
  Alcotest.(check bool) "same spec, same matrix" true (Csr.approx_equal a b)

let test_invariants_accept_spec_models () =
  let md =
    Gen_md.of_spec
      (Spec.Direct { sizes = [| 3; 2; 2 |]; width = 2; symmetric = false; seed = 5 })
  in
  Invariants.assert_valid md;
  Alcotest.(check (list (of_pp Invariants.pp_violation))) "no violations" []
    (Invariants.md md)

let test_chain_irreducible () =
  let prng = Prng.of_seed 11 in
  for _ = 1 to 25 do
    let states = 2 + Prng.int prng 10 in
    let spec = { Spec.states; extra = Prng.int prng 12; planted = Prng.bool prng; seed = Prng.int prng 100000 } in
    let c = Gen_chain.ctmc (Prng.of_seed spec.Spec.seed) spec in
    Alcotest.(check bool) "ring makes it irreducible" true (Mdl_ctmc.Ctmc.is_irreducible c)
  done

let qcheck_tests =
  let open QCheck in
  let no_violations mode arb name =
    Test.make ~count:120 ~name arb (fun spec ->
        let o = Oracle.run mode spec in
        if Oracle.ok o then true
        else Test.fail_reportf "%a" Oracle.pp_outcome o)
  in
  [
    no_violations Oracle.Ordinary (Qgen.model ())
      "oracle: ordinary lumping agrees compositionally vs flat";
    no_violations Oracle.Exact (Qgen.model ())
      "oracle: exact lumping agrees compositionally vs flat";
    Test.make ~count:120 ~name:"oracle: injected rate fault is always caught"
      (Qgen.model ()) (fun spec ->
        let o = Oracle.run ~inject:0.5 Oracle.Ordinary spec in
        List.mem_assoc "inject" o.Oracle.skipped || not (Oracle.ok o));
    Test.make ~count:150 ~name:"generated diagrams are well-formed"
      (Qgen.md_model ()) (fun spec -> Invariants.md (Gen_md.of_spec spec) = []);
    Test.make ~count:150 ~name:"spec derivation is deterministic" (Qgen.md_model ())
      (fun spec ->
        Csr.approx_equal
          (Md.to_csr (Gen_md.of_spec spec))
          (Md.to_csr (Gen_md.of_spec spec)));
  ]

let tests =
  [
    Alcotest.test_case "oracle accepts planted chain" `Quick
      test_oracle_accepts_planted_chain;
    Alcotest.test_case "oracle catches injected fault" `Quick
      test_oracle_catches_injection;
    Alcotest.test_case "spec generation deterministic" `Quick
      test_generation_deterministic;
    Alcotest.test_case "invariants accept generated MDs" `Quick
      test_invariants_accept_spec_models;
    Alcotest.test_case "generated chains irreducible" `Quick test_chain_irreducible;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

module Sum_table = Hashtbl.Make (struct
  type t = int * Formal_sum.t (* level of the referenced children, sum *)

  let equal (l1, s1) (l2, s2) = l1 = l2 && Formal_sum.equal s1 s2

  let hash (l, s) = Mdl_util.Hashx.combine l (Formal_sum.hash s)
end)

let merge_terms md =
  let out = Md.create ~sizes:(Md.sizes md) in
  let nlevels = Md.levels md in
  let node_memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let merge_memo : int Sum_table.t = Sum_table.create 64 in
  (* Convert a formal sum whose terms reference OLD nodes at [level]
     into a sum over NEW nodes with at most one term. *)
  let rec convert_sum level sum =
    if level > nlevels then sum (* terminal references: plain scalars *)
    else
      match Formal_sum.terms sum with
      | [] -> Formal_sum.empty
      | [ (n, c) ] -> Formal_sum.singleton (convert_node n) c
      | terms -> Formal_sum.singleton (convert_merged level terms) 1.0
  (* Convert one old node as-is (entries converted recursively). *)
  and convert_node n =
    match Hashtbl.find_opt node_memo n with
    | Some id -> id
    | None ->
        let level = Md.node_level md n in
        let entries = ref [] in
        Md.iter_node_entries md n (fun r c s ->
            entries := (r, c, convert_sum (level + 1) s) :: !entries);
        let id = Md.add_node out ~level !entries in
        Hashtbl.add node_memo n id;
        id
  (* Build the node representing the weighted sum of several old nodes
     at [level]. *)
  and convert_merged level terms =
    let key = (level, Formal_sum.of_list terms) in
    match Sum_table.find_opt merge_memo key with
    | Some id -> id
    | None ->
        let combined : (int * int, Formal_sum.t) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun (n, c) ->
            Md.iter_node_entries md n (fun r cc s ->
                let prev =
                  Option.value ~default:Formal_sum.empty
                    (Hashtbl.find_opt combined (r, cc))
                in
                Hashtbl.replace combined (r, cc) (Formal_sum.add prev (Formal_sum.scale c s))))
          terms;
        let entries =
          Hashtbl.fold
            (fun (r, cc) s acc -> (r, cc, convert_sum (level + 1) s) :: acc)
            combined []
        in
        let id = Md.add_node out ~level entries in
        Sum_table.add merge_memo key id;
        id
  in
  let root = convert_node (Md.root md) in
  Md.set_root out root;
  out

let normalize md =
  let out = Md.create ~sizes:(Md.sizes md) in
  (* memo: old node id -> (new node id, extracted scale factor);
     references to an old node n with coefficient c become references to
     the normalised node with coefficient c * scale(n). *)
  let memo : (int, int * float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.add memo (Md.terminal md) (Md.terminal out, 1.0);
  let rec convert n =
    match Hashtbl.find_opt memo n with
    | Some r -> r
    | None ->
        let level = Md.node_level md n in
        (* Convert entries first (children normalised bottom-up). *)
        let entries = ref [] in
        Md.iter_node_entries md n (fun r c s ->
            let s' =
              Formal_sum.of_list
                (List.map
                   (fun (child, w) ->
                     let child', scale = convert child in
                     (child', w *. scale))
                   (Formal_sum.terms s))
            in
            if not (Formal_sum.is_empty s') then entries := (r, c, s') :: !entries);
        (* Canonical factor: the first nonzero coefficient in row-major,
           column-major, child-id order. *)
        let ordered =
          List.sort
            (fun (r1, c1, _) (r2, c2, _) -> compare (r1, c1) (r2, c2))
            !entries
        in
        let gamma =
          match ordered with
          | [] -> 1.0
          | (_, _, s) :: _ -> (
              match Formal_sum.terms s with
              | (_, w) :: _ -> w
              | [] -> 1.0)
        in
        let scaled =
          if gamma = 1.0 then ordered
          else
            List.map (fun (r, c, s) -> (r, c, Formal_sum.scale (1.0 /. gamma) s)) ordered
        in
        let id = Md.add_node out ~level scaled in
        let result = (id, gamma) in
        Hashtbl.add memo n result;
        result
  in
  let root, root_scale = convert (Md.root md) in
  if root_scale = 1.0 then begin
    Md.set_root out root;
    out
  end
  else begin
    (* Reapply the extracted root factor so the represented matrix is
       unchanged: scale every root entry back. *)
    let entries = ref [] in
    Md.iter_node_entries out root (fun r c s ->
        entries := (r, c, Formal_sum.scale root_scale s) :: !entries);
    let root' = Md.add_node out ~level:1 !entries in
    Md.set_root out root';
    out
  end

module Dynarray = Mdl_util.Dynarray
module Hashx = Mdl_util.Hashx

type t = int

(* id 0 = Zero (empty set), id 1 = One (the terminal below the bottom
   level); ids >= 2 are proper nodes. *)
let zero = 0

let one = 1

type node_data = {
  level : int;
  arcs : (int * int) array; (* (local state, child id), sorted, child <> Zero *)
}

module Key = struct
  type t = node_data

  let equal a b = a.level = b.level && a.arcs = b.arcs

  let hash n =
    Array.fold_left
      (fun h (s, c) -> Hashx.combine (Hashx.combine h s) c)
      n.level n.arcs
end

module Cons = Hashtbl.Make (Key)

type man = {
  nlevels : int;
  nodes : node_data Dynarray.t; (* data for id i at index i-2 *)
  cons : int Cons.t;
  union_cache : (int * int, int) Hashtbl.t;
  image_cache : (int * int, int) Hashtbl.t;
  count_cache : (int, int) Hashtbl.t;
}

let manager ~levels =
  if levels < 1 then invalid_arg "Set_mdd.manager: levels must be >= 1";
  {
    nlevels = levels;
    nodes = Dynarray.create ();
    cons = Cons.create 1024;
    union_cache = Hashtbl.create 1024;
    image_cache = Hashtbl.create 1024;
    count_cache = Hashtbl.create 1024;
  }

let levels m = m.nlevels

let empty _m = zero

let is_empty t = t = zero

let equal (a : t) b = a = b

let data m id = Dynarray.get m.nodes (id - 2)

let mk m level arcs =
  if Array.length arcs = 0 then zero
  else begin
    let candidate = { level; arcs } in
    match Cons.find_opt m.cons candidate with
    | Some id -> id
    | None ->
        let id = Dynarray.length m.nodes + 2 in
        Dynarray.push m.nodes candidate;
        Cons.add m.cons candidate id;
        id
  end

let singleton m tuple =
  if Array.length tuple <> m.nlevels then
    invalid_arg "Set_mdd.singleton: tuple length mismatch";
  Array.iter
    (fun s -> if s < 0 then invalid_arg "Set_mdd.singleton: negative substate")
    tuple;
  let rec build level =
    if level > m.nlevels then one
    else mk m level [| (tuple.(level - 1), build (level + 1)) |]
  in
  build 1

let rec union m a b =
  if a = b then a
  else if a = zero then b
  else if b = zero then a
  else if a = one || b = one then one (* both at the terminal level *)
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.union_cache key with
    | Some r -> r
    | None ->
        let da = data m a and db = data m b in
        assert (da.level = db.level);
        (* merge the sorted arc arrays *)
        let out = Dynarray.create () in
        let na = Array.length da.arcs and nb = Array.length db.arcs in
        let i = ref 0 and j = ref 0 in
        while !i < na || !j < nb do
          if !i >= na then begin
            Dynarray.push out db.arcs.(!j);
            incr j
          end
          else if !j >= nb then begin
            Dynarray.push out da.arcs.(!i);
            incr i
          end
          else begin
            let sa, ca = da.arcs.(!i) and sb, cb = db.arcs.(!j) in
            if sa < sb then begin
              Dynarray.push out (sa, ca);
              incr i
            end
            else if sb < sa then begin
              Dynarray.push out (sb, cb);
              incr j
            end
            else begin
              Dynarray.push out (sa, union m ca cb);
              incr i;
              incr j
            end
          end
        done;
        let r = mk m da.level (Dynarray.to_array out) in
        Hashtbl.add m.union_cache key r;
        r
  end

let mem m t tuple =
  if Array.length tuple <> m.nlevels then invalid_arg "Set_mdd.mem: tuple length mismatch";
  let rec walk id level =
    if id = zero then false
    else if level > m.nlevels then true
    else begin
      let arcs = (data m id).arcs in
      let rec find lo hi =
        if lo > hi then false
        else
          let mid = (lo + hi) / 2 in
          let s, c = arcs.(mid) in
          if s = tuple.(level - 1) then walk c (level + 1)
          else if s < tuple.(level - 1) then find (mid + 1) hi
          else find lo (mid - 1)
      in
      find 0 (Array.length arcs - 1)
    end
  in
  walk t 1

let rec count m t =
  if t = zero then 0
  else if t = one then 1
  else
    match Hashtbl.find_opt m.count_cache t with
    | Some n -> n
    | None ->
        let n =
          Array.fold_left (fun acc (_, c) -> acc + count m c) 0 (data m t).arcs
        in
        Hashtbl.add m.count_cache t n;
        n

let num_nodes m = Dynarray.length m.nodes

(* The image computation interns nothing by itself: [rel] is consulted
   only for local states present in the set, and a level's successors
   are materialised only when all deeper levels produced a non-empty
   image — see the Kronecker product semantics in the mli. *)
let image m rel t =
  let rec walk id =
    if id = zero then zero
    else if id = one then one
    else begin
      let d = data m id in
      (* accumulate target local state -> child image (unioned) *)
      let acc : (int, t) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun (s, child) ->
          match rel d.level s with
          | [] -> ()
          | targets ->
              let child' = walk child in
              if child' <> zero then
                List.iter
                  (fun v ->
                    let prev = Option.value ~default:zero (Hashtbl.find_opt acc v) in
                    Hashtbl.replace acc v (union m prev child'))
                  targets)
        d.arcs;
      let arcs =
        Hashtbl.fold (fun v c l -> (v, c) :: l) acc []
        |> List.sort compare |> Array.of_list
      in
      mk m d.level arcs
    end
  in
  walk t

let image_cached m ~key rel t =
  (* One flat cache for all events; per-(event, node) entries.  Note the
     cache is only sound if [rel] is deterministic per key. *)
  let rec walk id =
    if id = zero then zero
    else if id = one then one
    else
      match Hashtbl.find_opt m.image_cache (key, id) with
      | Some r -> r
      | None ->
          let d = data m id in
          let acc : (int, t) Hashtbl.t = Hashtbl.create 8 in
          Array.iter
            (fun (s, child) ->
              match rel d.level s with
              | [] -> ()
              | targets ->
                  let child' = walk child in
                  if child' <> zero then
                    List.iter
                      (fun v ->
                        let prev = Option.value ~default:zero (Hashtbl.find_opt acc v) in
                        Hashtbl.replace acc v (union m prev child'))
                      targets)
            d.arcs;
          let arcs =
            Hashtbl.fold (fun v c l -> (v, c) :: l) acc []
            |> List.sort compare |> Array.of_list
          in
          let r = mk m d.level arcs in
          Hashtbl.add m.image_cache (key, id) r;
          r
  in
  walk t

let saturation m ~rels ~tops s =
  let nevents = Array.length rels in
  if Array.length tops <> nevents then
    invalid_arg "Set_mdd.saturation: rels/tops length mismatch";
  Array.iter
    (fun top ->
      if top < 1 || top > m.nlevels then
        invalid_arg "Set_mdd.saturation: top level out of range")
    tops;
  (* events indexed by top level *)
  let by_top = Array.make (m.nlevels + 1) [] in
  Array.iteri (fun e top -> by_top.(top) <- e :: by_top.(top)) tops;
  let sat_cache : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let img_cache : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  (* Saturate [id]: saturate children bottom-up, then fire the events
     whose top is this node's level until a local fixpoint.  The firing
     handles the top-level transition itself and recurses only into
     strictly deeper levels (img_below), so the recursion is
     level-decreasing and self-loop events cannot re-enter the node
     under saturation. *)
  let rec saturate id =
    if id = zero || id = one then id
    else
      match Hashtbl.find_opt sat_cache id with
      | Some r -> r
      | None ->
          let d = data m id in
          let base =
            mk m d.level (Array.map (fun (v, c) -> (v, saturate c)) d.arcs)
          in
          let rec fire n =
            if n = zero then zero
            else begin
              let dn = data m n in
              let acc : (int, t) Hashtbl.t = Hashtbl.create 8 in
              List.iter
                (fun e ->
                  Array.iter
                    (fun (v, child) ->
                      match rels.(e) dn.level v with
                      | [] -> ()
                      | targets ->
                          let child' = img_below e child in
                          if child' <> zero then
                            List.iter
                              (fun v' ->
                                let prev =
                                  Option.value ~default:zero (Hashtbl.find_opt acc v')
                                in
                                Hashtbl.replace acc v' (union m prev child'))
                              targets)
                    dn.arcs)
                by_top.(dn.level);
              let arcs =
                Hashtbl.fold (fun v c l -> (v, c) :: l) acc []
                |> List.sort compare |> Array.of_list
              in
              let n' = union m n (mk m dn.level arcs) in
              if n' = n then n else fire n'
            end
          in
          let r = fire base in
          Hashtbl.add sat_cache id r;
          Hashtbl.replace sat_cache r r;
          r
  (* Saturated image of event [e] applied to [id] (a saturated node one
     level below the firing level) and everything deeper. *)
  and img_below e id =
    if id = zero || id = one then id
    else
      match Hashtbl.find_opt img_cache (e, id) with
      | Some r -> r
      | None ->
          let d = data m id in
          let acc : (int, t) Hashtbl.t = Hashtbl.create 8 in
          Array.iter
            (fun (v, child) ->
              match rels.(e) d.level v with
              | [] -> ()
              | targets ->
                  let child' = img_below e child in
                  if child' <> zero then
                    List.iter
                      (fun v' ->
                        let prev =
                          Option.value ~default:zero (Hashtbl.find_opt acc v')
                        in
                        Hashtbl.replace acc v' (union m prev child'))
                      targets)
            d.arcs;
          let arcs =
            Hashtbl.fold (fun v c l -> (v, c) :: l) acc []
            |> List.sort compare |> Array.of_list
          in
          (* saturate the image: new substates may enable events rooted
             at this level or below *)
          let r = saturate (mk m d.level arcs) in
          Hashtbl.add img_cache (e, id) r;
          r
  in
  saturate s

let iter m t f =
  if t <> zero then begin
    let buf = Array.make m.nlevels 0 in
    let rec walk id level =
      if level > m.nlevels then f buf
      else
        Array.iter
          (fun (s, child) ->
            buf.(level - 1) <- s;
            walk child (level + 1))
          (data m id).arcs
    in
    walk t 1
  end

let to_statespace m t =
  if t = zero then invalid_arg "Set_mdd.to_statespace: empty set";
  let tuples = ref [] in
  iter m t (fun s -> tuples := Array.copy s :: !tuples);
  Statespace.of_tuples ~levels:m.nlevels !tuples

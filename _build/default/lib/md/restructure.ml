let merge_adjacent md l =
  let nlevels = Md.levels md in
  if l < 1 || l >= nlevels then invalid_arg "Restructure.merge_adjacent: bad level";
  let n_low = Md.size md (l + 1) in
  let sizes =
    Array.init (nlevels - 1) (fun i ->
        let level = i + 1 in
        if level < l then Md.size md level
        else if level = l then Md.size md l * n_low
        else Md.size md (level + 1))
  in
  let out = Md.create ~sizes in
  let memo = Hashtbl.create 64 in
  Hashtbl.add memo (Md.terminal md) (Md.terminal out);
  (* New level of an old node: levels above [l] keep their index, the
     merged level absorbs [l+1], deeper levels shift up by one. *)
  let new_level old_level = if old_level <= l then old_level else old_level - 1 in
  let rec convert id =
    match Hashtbl.find_opt memo id with
    | Some id' -> id'
    | None ->
        let level = Md.node_level md id in
        let entries = ref [] in
        if level = l then
          (* Fuse each formal-sum term with the referenced child's
             entries: ((r, r2), (c, c2)) gets the child's sum scaled by
             the term's coefficient. *)
          Md.iter_node_entries md id (fun r c sum ->
              List.iter
                (fun (child, w) ->
                  Md.iter_node_entries md child (fun r2 c2 sum2 ->
                      let fused =
                        Formal_sum.scale w (Formal_sum.map_children convert sum2)
                      in
                      entries :=
                        ((r * n_low) + r2, (c * n_low) + c2, fused) :: !entries))
                (Formal_sum.terms sum))
        else
          Md.iter_node_entries md id (fun r c sum ->
              entries := (r, c, Formal_sum.map_children convert sum) :: !entries);
        let id' = Md.add_node out ~level:(new_level level) !entries in
        Hashtbl.add memo id id';
        id'
  in
  let root = convert (Md.root md) in
  Md.set_root out root;
  out

let merge_tuple md l s =
  let nlevels = Md.levels md in
  if l < 1 || l >= nlevels then invalid_arg "Restructure.merge_tuple: bad level";
  if Array.length s <> nlevels then
    invalid_arg "Restructure.merge_tuple: tuple length mismatch";
  let n_low = Md.size md (l + 1) in
  Array.init (nlevels - 1) (fun i ->
      let level = i + 1 in
      if level < l then s.(level - 1)
      else if level = l then (s.(l - 1) * n_low) + s.(l)
      else s.(level))

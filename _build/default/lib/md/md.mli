(** Matrix diagrams (MDs) — Section 3 of the paper.

    An ordered MD with [L] levels represents a real matrix over the
    product space [S_1 x .. x S_L].  A node at level [l] is a sparse
    [|S_l| x |S_l|] matrix whose entries are {!Formal_sum.t}s referencing
    nodes of level [l+1]; level-[L] entries reference the unique 1x1
    {e terminal} node (the paper's artificial level [L+1] containing the
    scalar 1), so every level is treated uniformly.

    Nodes are hash-consed per level: building an already-existing node
    returns the existing id, so the diagram is quasi-reduced by
    construction — "at any level, no two nodes are equal" — which is the
    basis of both MD space-efficiency and the locality of the lumping
    keys.

    A diagram value is a mutable {e store} of nodes plus a distinguished
    root.  Nodes are immutable once created; lumping builds new nodes
    (possibly in the same store) rather than mutating existing ones. *)

type t

type node_id = int

val create : sizes:int array -> t
(** [create ~sizes] is an empty diagram with [L = Array.length sizes]
    levels, level [l] having index set [{0 .. sizes.(l-1) - 1}].
    @raise Invalid_argument if [sizes] is empty or has a non-positive
    entry. *)

val levels : t -> int

val size : t -> int -> int
(** [size t l] is [|S_l|], for [l] in [1..L]. *)

val sizes : t -> int array

val terminal : t -> node_id
(** The terminal node (conceptual level [L+1]). *)

val add_node : t -> level:int -> (int * int * Formal_sum.t) list -> node_id
(** [add_node t ~level entries] creates (or finds) the node at [level]
    whose entry at [(row, col)] is the given formal sum; entries listed
    twice for the same position are summed, empty sums dropped.
    Children referenced by the sums must already exist and live at
    [level + 1] (the terminal for [level = L]).
    @raise Invalid_argument on bad level, out-of-range row/col, or
    wrong-level children. *)

val scalar_sum : t -> float -> Formal_sum.t
(** [scalar_sum t v] is the formal sum [v * terminal] — the way real
    values appear at level [L]. *)

val set_root : t -> node_id -> unit
(** @raise Invalid_argument if the node is not at level 1. *)

val root : t -> node_id
(** @raise Invalid_argument if no root has been set. *)

val node_level : t -> node_id -> int

val node_row : t -> node_id -> int -> (int * Formal_sum.t) list
(** Entries of one row, ascending column order. *)

val node_col : t -> node_id -> int -> (int * Formal_sum.t) list
(** Entries of one column, ascending row order (transposed access,
    computed lazily per node and cached). *)

val iter_node_entries : t -> node_id -> (int -> int -> Formal_sum.t -> unit) -> unit

val node_nnz : t -> node_id -> int

val live_nodes : t -> node_id list array
(** [live_nodes t].(l-1) is the list of nodes at level [l] reachable from
    the root — the paper's [N_l].  (The store may also hold unreachable
    nodes left over from construction; they are not part of the
    diagram.) @raise Invalid_argument if no root is set. *)

val num_live_nodes : t -> int

val iter_entries :
  t -> (row:int array -> col:int array -> float -> unit) -> unit
(** Enumerate the nonzero entries of the represented matrix by walking
    all root-to-terminal paths and multiplying coefficients.  [row] and
    [col] are length-[L] substate tuples, {e reused} between calls —
    copy them if retained.  Entries are visited once per path, so a
    position reachable by several paths is reported several times with
    partial values (summing them gives the matrix entry). *)

val to_csr : t -> Mdl_sparse.Csr.t
(** Flatten to a sparse matrix over the full (mixed-radix, row-major)
    product space — intended for tests and small diagrams.
    @raise Invalid_argument if the product space exceeds 2^22 states. *)

val potential_space_size : t -> int

val memory_bytes : t -> int
(** Rough heap footprint of the live nodes: per node its row table, per
    entry its column index and formal-sum terms.  Used for the Table 1
    "MD space" column. *)

val stats : t -> int array * int array
(** Per-level (node count, total entry count) of live nodes. *)

val pp : Format.formatter -> t -> unit

let to_dot md =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph md {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  let live = Md.live_nodes md in
  Array.iteri
    (fun i ids ->
      Buffer.add_string buf (Printf.sprintf "  subgraph cluster_%d { label=\"level %d\";\n" i (i + 1));
      List.iter
        (fun id ->
          let entries = ref [] in
          Md.iter_node_entries md id (fun r c s ->
              entries :=
                Printf.sprintf "(%d,%d): %s" r c
                  (Format.asprintf "%a" Formal_sum.pp s)
                :: !entries);
          let label =
            Printf.sprintf "R%d\\n%s" id (String.concat "\\n" (List.rev !entries))
          in
          Buffer.add_string buf (Printf.sprintf "    n%d [label=\"%s\"];\n" id label))
        ids;
      Buffer.add_string buf "  }\n")
    live;
  Buffer.add_string buf
    (Printf.sprintf "  n%d [label=\"terminal\", shape=circle];\n" (Md.terminal md));
  Array.iter
    (List.iter (fun id ->
         let seen = Hashtbl.create 8 in
         Md.iter_node_entries md id (fun _ _ s ->
             List.iter
               (fun child ->
                 if not (Hashtbl.mem seen child) then begin
                   Hashtbl.add seen child ();
                   Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id child)
                 end)
               (Formal_sum.children s))))
    live;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file md path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot md))

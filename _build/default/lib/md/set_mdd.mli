(** Hash-consed set MDDs: sets of substate tuples with shared suffixes,
    supporting union and event-image computation — the data structure
    behind {e symbolic} state-space generation (the paper's MDs are
    generated "with the help of a symbolic state-space exploration";
    this module provides that substrate).

    A manager owns the node store; values of type {!t} are meaningful
    only relative to their manager.  The empty set and the full-suffix
    terminal are distinguished nodes, so equality of sets is pointer
    equality of ids — which is what makes fixpoint detection O(1). *)

type man

type t = private int
(** A set of [levels]-tuples (a node id within the manager). *)

val manager : levels:int -> man
(** @raise Invalid_argument if [levels < 1]. *)

val levels : man -> int

val empty : man -> t

val is_empty : t -> bool

val singleton : man -> int array -> t
(** @raise Invalid_argument on wrong tuple length or negative substate. *)

val union : man -> t -> t -> t
(** Memoised; O(shared structure). *)

val equal : t -> t -> bool
(** Constant-time (hash-consing canonicity). *)

val mem : man -> t -> int array -> bool

val count : man -> t -> int
(** Number of tuples in the set (memoised). *)

val num_nodes : man -> int
(** Total nodes allocated in the manager (diagnostics). *)

val image : man -> (int -> int -> int list) -> t -> t
(** [image m rel s] is the set [{ t | exists u in s, t in rel-image of
    u }] where the relation factorises per level: [rel l u_l] lists the
    level-[l] successors of local state [u_l] (empty = the event is
    locally disabled, disabling the whole transition — Kronecker
    semantics).  Not memoised across calls (the relation is a closure);
    callers memoise per event via {!image_cached}. *)

val image_cached : man -> key:int -> (int -> int -> int list) -> t -> t
(** Like {!image} but with a per-manager cache keyed by [(key, node)];
    use a stable [key] per event and a deterministic relation. *)

val saturation :
  man ->
  rels:(int -> int -> int list) array ->
  tops:int array ->
  t ->
  t
(** [saturation m ~rels ~tops s] is the least fixpoint of [s] under all
    the event relations — the reachable set — computed with the
    {e saturation} strategy of Ciardo et al. (the paper's [5]): each
    node is saturated bottom-up, firing exhaustively the events whose
    {e top} (highest level the event touches; levels above it must be
    identity) equals the node's level, and every intermediate image node
    is saturated before use.  Orders of magnitude fewer peak nodes than
    breadth-first iteration on structured models.

    [rels.(e) l u] lists the level-[l] successors of local state [u]
    under event [e] (must be deterministic — results are cached);
    [tops.(e)] is event [e]'s top level (use [1] when unknown: sound,
    merely slower).
    @raise Invalid_argument if [rels] and [tops] differ in length or a
    top is out of range. *)

val iter : man -> t -> (int array -> unit) -> unit
(** Enumerate tuples in lexicographic order (buffer reused). *)

val to_statespace : man -> t -> Statespace.t
(** @raise Invalid_argument on the empty set. *)

(** Slice-merging compaction of matrix diagrams.

    [Kronecker.to_md] produces one node chain per event, which is
    maximally shared but scatters parallel behaviour (e.g. one event per
    replicated server) over many nodes.  Since the local lumpability
    conditions of Definition 3 are {e per node}, symmetry between
    replicas is invisible in that form.

    [merge_terms] rewrites the diagram so that every formal sum above
    the bottom level has a single term: a multi-term sum
    [sum_k r_k * N_k] is replaced by a reference to a node representing
    the weighted sum of the children (computed entrywise on their formal
    sums, recursively).  Equal merged slices are shared again by
    hash-consing, so the result is the quasi-reduced "slice form" in
    which each node aggregates all events active under a given
    upper-level transition — the shape the paper's symbolic state-space
    generator emits, and the one on which compositional lumping finds
    replica symmetries. *)

val merge_terms : Md.t -> Md.t
(** Equivalent diagram (same represented matrix, same level sizes) in
    slice form.  @raise Invalid_argument if the input has no root. *)

val normalize : Md.t -> Md.t
(** Canonical coefficient scaling, after Miner's canonical MDs (the
    paper's [15]): bottom-up, every node is divided by its first
    nonzero coefficient (row-major order) and the factor is pushed into
    the parents' formal sums.  Nodes that were proportional — denoting
    matrices equal up to a scalar — become identical and merge by
    hash-consing.  This tightens the formal-sum lumping keys: two formal
    sums denoting equal matrices through proportional nodes become
    structurally equal (see the "sufficiency gap" discussion in
    Section 4 of the paper).  Represents the same matrix; level sizes
    unchanged. *)

module Tuple_table = Hashtbl.Make (struct
  type t = int array

  let equal = ( = )

  let hash = Mdl_util.Hashx.int_array
end)

type t = {
  nlevels : int;
  tuples : int array array; (* index -> tuple, lexicographically sorted *)
  positions : int Tuple_table.t;
}

let of_tuples ~levels tuples =
  if tuples = [] then invalid_arg "Statespace.of_tuples: empty state space";
  List.iter
    (fun s ->
      if Array.length s <> levels then
        invalid_arg "Statespace.of_tuples: tuple of wrong length")
    tuples;
  let dedup = Tuple_table.create (List.length tuples) in
  List.iter (fun s -> Tuple_table.replace dedup s ()) tuples;
  let arr = Array.make (Tuple_table.length dedup) [||] in
  let k = ref 0 in
  Tuple_table.iter
    (fun s () ->
      arr.(!k) <- Array.copy s;
      incr k)
    dedup;
  Array.sort compare arr;
  let positions = Tuple_table.create (Array.length arr) in
  Array.iteri (fun i s -> Tuple_table.replace positions s i) arr;
  { nlevels = levels; tuples = arr; positions }

let levels t = t.nlevels

let size t = Array.length t.tuples

let index t s = Tuple_table.find_opt t.positions s

let tuple t i =
  if i < 0 || i >= size t then invalid_arg "Statespace.tuple: index out of bounds";
  t.tuples.(i)

let iter f t = Array.iteri f t.tuples

let local_states t l =
  if l < 1 || l > t.nlevels then invalid_arg "Statespace.local_states: level out of range";
  let seen = Hashtbl.create 64 in
  Array.iter (fun s -> Hashtbl.replace seen s.(l - 1) ()) t.tuples;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let map t f =
  let mapped = Array.to_list (Array.map f t.tuples) in
  (* The image may live over a different number of levels (e.g. after
     level merging); infer it from the mapped tuples. *)
  let levels = match mapped with [] -> t.nlevels | s :: _ -> Array.length s in
  of_tuples ~levels mapped

let pp ppf t =
  Format.fprintf ppf "@[<v>%d states over %d levels" (size t) t.nlevels;
  if size t <= 64 then
    iter
      (fun i s ->
        Format.fprintf ppf "@,%d: (%s)" i
          (String.concat "," (List.map string_of_int (Array.to_list s))))
      t;
  Format.fprintf ppf "@]"

(** Graphviz export of matrix diagrams, for debugging and
    documentation. *)

val to_dot : Md.t -> string
(** A [dot] digraph: one record node per live MD node showing its
    nonzero entries, one edge per formal-sum term labelled with its
    coefficient. *)

val write_file : Md.t -> string -> unit
(** Render {!to_dot} to a file. *)

module Dynarray = Mdl_util.Dynarray
module Hashx = Mdl_util.Hashx

type node = int

type node_data = {
  arcs : (int * int * int) array; (* (local state, offset, child id), sorted *)
  total : int; (* states below this node *)
}

type t = {
  nlevels : int;
  nodes : node_data Dynarray.t; (* id 0 is the terminal *)
  root_id : node;
  size : int;
}

module Key = struct
  type t = (int * int * int) array

  let equal (a : t) b = a = b

  let hash a =
    Array.fold_left
      (fun h (s, o, c) -> Hashx.combine (Hashx.combine (Hashx.combine h s) o) c)
      (Array.length a) a
end

module Cons = Hashtbl.Make (Key)

let of_statespace ss =
  let n = Statespace.size ss in
  let nlevels = Statespace.levels ss in
  (* Statespace tuples are already lexicographically sorted. *)
  let tuple i = Statespace.tuple ss i in
  let nodes = Dynarray.create () in
  Dynarray.push nodes { arcs = [||]; total = 1 };
  let cons = Cons.create 256 in
  let mk arcs total =
    match Cons.find_opt cons arcs with
    | Some id -> id
    | None ->
        let id = Dynarray.length nodes in
        Dynarray.push nodes { arcs; total };
        Cons.add cons arcs id;
        id
  in
  (* Build the sub-diagram for tuples[lo..hi) at [level]; the range is
     contiguous because the tuples are sorted. *)
  let rec build level lo hi =
    if level > nlevels then 0
    else begin
      let arcs = Dynarray.create () in
      let offset = ref 0 in
      let glo = ref lo in
      while !glo < hi do
        let v = (tuple !glo).(level - 1) in
        let ghi = ref !glo in
        while !ghi < hi && (tuple !ghi).(level - 1) = v do
          incr ghi
        done;
        let child = build (level + 1) !glo !ghi in
        Dynarray.push arcs (v, !offset, child);
        offset := !offset + (!ghi - !glo);
        glo := !ghi
      done;
      mk (Dynarray.to_array arcs) (hi - lo)
    end
  in
  let root_id = build 1 0 n in
  { nlevels; nodes; root_id; size = n }

let levels t = t.nlevels

let count t = t.size

let num_nodes t = Dynarray.length t.nodes - 1

let root t = t.root_id

let data t id = Dynarray.get t.nodes id

let arc t id s =
  let arcs = (data t id).arcs in
  let lo = ref 0 and hi = ref (Array.length arcs - 1) in
  let result = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v, o, c = arcs.(mid) in
    if v = s then begin
      result := Some (o, c);
      lo := !hi + 1
    end
    else if v < s then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let node_count t id = (data t id).total

let index t tuple =
  if Array.length tuple <> t.nlevels then invalid_arg "Mdd.index: tuple length mismatch";
  let rec walk level id acc =
    if level > t.nlevels then Some acc
    else
      match arc t id tuple.(level - 1) with
      | None -> None
      | Some (offset, child) -> walk (level + 1) child (acc + offset)
  in
  walk 1 t.root_id 0

let iter t f =
  let buf = Array.make t.nlevels 0 in
  let idx = ref 0 in
  let rec walk level id =
    if level > t.nlevels then begin
      f !idx buf;
      incr idx
    end
    else
      Array.iter
        (fun (v, _, child) ->
          buf.(level - 1) <- v;
          walk (level + 1) child)
        (data t id).arcs
  in
  walk 1 t.root_id

(** Reachable global state spaces for matrix diagrams.

    An MD is defined over the potential product space
    [S_1 x .. x S_L]; the states actually reachable in a model are a
    subset of it.  This module stores that subset as an indexed set of
    substate tuples: solution vectors are indexed by [0 .. size-1], and
    matrix-diagram/vector products translate tuples to indices through
    it (the role played by the symbolic state space in the paper's
    Möbius implementation). *)

type t

val of_tuples : levels:int -> int array list -> t
(** Build from a list of length-[levels] tuples; duplicates are merged;
    tuples are ordered lexicographically.
    @raise Invalid_argument on a tuple of the wrong length or an empty
    list. *)

val levels : t -> int

val size : t -> int

val index : t -> int array -> int option
(** Position of a tuple, if present. *)

val tuple : t -> int -> int array
(** The tuple at an index (do not mutate the returned array). *)

val iter : (int -> int array -> unit) -> t -> unit

val local_states : t -> int -> int list
(** [local_states t l] is the sorted set of level-[l] substates that
    occur in some state — the projection of the state space onto level
    [l] (used to size the per-level index sets). *)

val map : t -> (int array -> int array) -> t
(** [map t f] is the state space [{f s | s in t}] (e.g. the lumped state
    space obtained by mapping substates to class ids); duplicates
    collapse.  [f] may change the number of levels (e.g.
    {!Restructure.merge_tuple}-style maps); all images must
    have the same length. *)

val pp : Format.formatter -> t -> unit

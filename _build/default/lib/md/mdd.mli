(** Multi-valued decision diagrams over substate tuples, with per-node
    state counts — the offset-based indexing structure real MD solvers
    use for {e actual} (reachable) state spaces.

    An {!t} represents the same set as a {!Statespace.t}, but
    hierarchically: one shared node per distinct suffix set.  Each arc
    carries the number of states lexicographically before it within its
    node, so the index of a tuple is the sum of the offsets along its
    path — [O(L)] per lookup with no hashing, and vector products can
    co-walk an {!Md.t} and two [t] cursors, pruning unreachable branches
    wholesale (see {!Md_vector.vec_mul_mdd}).

    Indices agree with {!Statespace.index} (both are lexicographic). *)

type t

type node
(** A node at some level; the root is at level 1, terminals below level
    [L]. *)

val of_statespace : Statespace.t -> t
(** Build (with suffix sharing) from an explicit state space. *)

val levels : t -> int

val count : t -> int
(** Number of states — equals [Statespace.size] of the source. *)

val num_nodes : t -> int
(** Shared nodes in the diagram (excluding the terminal). *)

val index : t -> int array -> int option
(** Lexicographic index of a tuple, [None] if not a member. *)

val root : t -> node

val arc : t -> node -> int -> (int * node) option
(** [arc t n s] follows local state [s] out of node [n]: returns the
    offset (number of states before [s] within [n]) and the child node,
    or [None] when no member state has substate [s] here.  The child of
    a level-[L] node is the terminal (count 1). *)

val node_count : t -> node -> int
(** Number of tuples below a node. *)

val iter : t -> (int -> int array -> unit) -> unit
(** Enumerate members in index order (the tuple buffer is reused). *)

lib/md/compact.ml: Formal_sum Hashtbl List Md Mdl_util Option

lib/md/formal_sum.mli: Format

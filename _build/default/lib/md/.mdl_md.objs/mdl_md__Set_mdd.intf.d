lib/md/set_mdd.mli: Statespace

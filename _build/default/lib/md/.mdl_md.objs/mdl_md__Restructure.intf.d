lib/md/restructure.mli: Md

lib/md/formal_sum.ml: Array Format Int64 List Mdl_util

lib/md/mdd.ml: Array Hashtbl Mdl_util Statespace

lib/md/statespace.mli: Format

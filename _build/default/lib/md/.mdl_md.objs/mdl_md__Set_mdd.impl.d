lib/md/set_mdd.ml: Array Hashtbl List Mdl_util Option Statespace

lib/md/dot.mli: Md

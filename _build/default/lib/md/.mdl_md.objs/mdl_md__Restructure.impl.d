lib/md/restructure.ml: Array Formal_sum Hashtbl List Md

lib/md/md_vector.ml: Array Formal_sum List Md Mdd Mdl_sparse Printf Statespace

lib/md/dot.ml: Array Buffer Formal_sum Format Fun Hashtbl List Md Printf String

lib/md/compact.mli: Md

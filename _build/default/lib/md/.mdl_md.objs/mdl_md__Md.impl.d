lib/md/md.ml: Array Formal_sum Format Hashtbl List Mdl_sparse Mdl_util Option Printf

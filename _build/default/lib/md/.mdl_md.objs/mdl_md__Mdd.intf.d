lib/md/mdd.mli: Statespace

lib/md/md_vector.mli: Md Mdd Mdl_sparse Statespace

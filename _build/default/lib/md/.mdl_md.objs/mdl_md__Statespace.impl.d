lib/md/statespace.ml: Array Format Hashtbl List Mdl_util String

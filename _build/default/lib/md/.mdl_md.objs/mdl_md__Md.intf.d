lib/md/md.mli: Formal_sum Format Mdl_sparse

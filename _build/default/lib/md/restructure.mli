(** Level restructuring of matrix diagrams.

    Section 3 of the paper reasons about MDs by {e merging adjacent
    levels} — bottom-up or top-down — to reduce an [L]-level diagram to
    three levels without changing the represented matrix.  This module
    implements that operation concretely.

    Besides mirroring the paper's formal device, merging is useful in
    its own right: the per-level lumping conditions (Definition 3) can
    only see symmetry {e within} one level, so two identical components
    assigned to {e different} levels never lump — the situation the
    paper defers to model-level lumping [10].  Merging their levels
    first moves the symmetry inside a single level, where the
    compositional algorithm finds it (at the price of a larger level
    index set). *)

val merge_adjacent : Md.t -> int -> Md.t
(** [merge_adjacent md l] merges levels [l] and [l+1] into a single
    level whose index set is [S_l x S_{l+1}] (row-major:
    [s_l * |S_{l+1}| + s_{l+1}]); the result has [L-1] levels and
    represents the same matrix.
    @raise Invalid_argument unless [1 <= l < L]. *)

val merge_tuple : Md.t -> int -> int array -> int array
(** [merge_tuple md l s] maps a global substate tuple of [md] to the
    corresponding tuple of [merge_adjacent md l] (levels [l], [l+1]
    combined row-major).  Use with {!Statespace.map} to carry reachable
    state spaces across the merge. *)

(** Matrix Market ([.mtx]) coordinate-format I/O.

    The de-facto interchange format for sparse matrices; lets lumped
    rate matrices flow to external solvers/tools and lets test fixtures
    come from files.  Only the subset we produce/consume is supported:
    [matrix coordinate real general]. *)

val write : Csr.t -> out_channel -> unit
(** Write in coordinate format (1-based indices, one entry per line). *)

val write_file : Csr.t -> string -> unit

val read : in_channel -> Csr.t
(** @raise Failure on malformed input or an unsupported header. *)

val read_file : string -> Csr.t

val to_string : Csr.t -> string

val of_string : string -> Csr.t

module Dynarray = Mdl_util.Dynarray

type t = {
  rows : int;
  cols : int;
  is : int Dynarray.t;
  js : int Dynarray.t;
  vs : float Dynarray.t;
}

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Coo.create: negative dimension";
  { rows; cols; is = Dynarray.create (); js = Dynarray.create (); vs = Dynarray.create () }

let rows t = t.rows

let cols t = t.cols

let nnz t = Dynarray.length t.vs

let add t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg
      (Printf.sprintf "Coo.add: (%d,%d) out of bounds for %dx%d" i j t.rows t.cols);
  if v <> 0.0 then begin
    Dynarray.push t.is i;
    Dynarray.push t.js j;
    Dynarray.push t.vs v
  end

let iter f t =
  for k = 0 to nnz t - 1 do
    f (Dynarray.get t.is k) (Dynarray.get t.js k) (Dynarray.get t.vs k)
  done

let of_triplets ~rows ~cols triplets =
  let t = create ~rows ~cols in
  List.iter (fun (i, j, v) -> add t i j v) triplets;
  t

let to_triplets t =
  let acc = ref [] in
  iter (fun i j v -> acc := (i, j, v) :: !acc) t;
  List.rev !acc

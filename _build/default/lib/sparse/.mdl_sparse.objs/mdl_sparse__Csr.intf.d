lib/sparse/csr.mli: Coo Format Vec

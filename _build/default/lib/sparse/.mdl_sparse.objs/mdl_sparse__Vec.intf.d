lib/sparse/vec.mli: Format

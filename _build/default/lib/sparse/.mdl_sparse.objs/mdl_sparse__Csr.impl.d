lib/sparse/csr.ml: Array Coo Format List Mdl_util

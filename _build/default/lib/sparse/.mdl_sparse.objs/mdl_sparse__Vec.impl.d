lib/sparse/vec.ml: Array Float Format Mdl_util Printf

lib/sparse/coo.ml: List Mdl_util Printf

lib/sparse/matrix_market.ml: Buffer Coo Csr Fun List Printf String

lib/sparse/coo.mli:

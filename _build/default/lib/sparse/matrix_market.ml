let header = "%%MatrixMarket matrix coordinate real general"

let write m oc =
  output_string oc header;
  output_char oc '\n';
  Printf.fprintf oc "%d %d %d\n" (Csr.rows m) (Csr.cols m) (Csr.nnz m);
  Csr.iter (fun i j v -> Printf.fprintf oc "%d %d %.17g\n" (i + 1) (j + 1) v) m

let write_file m path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write m oc)

let to_string m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "%d %d %d\n" (Csr.rows m) (Csr.cols m) (Csr.nnz m));
  Csr.iter
    (fun i j v -> Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" (i + 1) (j + 1) v))
    m;
  Buffer.contents buf

let parse_lines next_line =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec first_content () =
    match next_line () with
    | None -> fail "Matrix_market: empty input"
    | Some l ->
        let l = String.trim l in
        if l = "" then first_content ()
        else if String.length l > 0 && l.[0] = '%' then begin
          (* header or comment; validate the banner if present *)
          if String.length l >= 2 && String.sub l 0 2 = "%%" then begin
            let lower = String.lowercase_ascii l in
            if
              not
                (String.split_on_char ' ' lower
                |> List.filter (fun s -> s <> "")
                |> function
                | _banner :: "matrix" :: "coordinate" :: "real" :: "general" :: _ -> true
                | _ -> false)
            then fail "Matrix_market: unsupported header %S" l
          end;
          first_content ()
        end
        else l
  in
  let dims = first_content () in
  let rows, cols, nnz =
    match
      String.split_on_char ' ' dims
      |> List.filter (fun s -> s <> "")
      |> List.map int_of_string_opt
    with
    | [ Some r; Some c; Some n ] -> (r, c, n)
    | _ -> fail "Matrix_market: malformed size line %S" dims
  in
  let coo = Coo.create ~rows ~cols in
  let count = ref 0 in
  let rec entries () =
    match next_line () with
    | None -> ()
    | Some l ->
        let l = String.trim l in
        if l = "" || l.[0] = '%' then entries ()
        else begin
          (match String.split_on_char ' ' l |> List.filter (fun s -> s <> "") with
          | [ si; sj; sv ] -> (
              match (int_of_string_opt si, int_of_string_opt sj, float_of_string_opt sv) with
              | Some i, Some j, Some v ->
                  if i < 1 || i > rows || j < 1 || j > cols then
                    fail "Matrix_market: entry (%d,%d) out of bounds" i j;
                  Coo.add coo (i - 1) (j - 1) v;
                  incr count
              | _ -> fail "Matrix_market: malformed entry %S" l)
          | _ -> fail "Matrix_market: malformed entry %S" l);
          entries ()
        end
  in
  entries ();
  if !count <> nnz then fail "Matrix_market: expected %d entries, found %d" nnz !count;
  Csr.of_coo coo

let read ic =
  parse_lines (fun () -> try Some (input_line ic) with End_of_file -> None)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)

let of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  parse_lines (fun () ->
      match !lines with
      | [] -> None
      | l :: rest ->
          lines := rest;
          Some l)

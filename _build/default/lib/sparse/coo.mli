(** Coordinate-format (triplet) builder for sparse matrices.

    A [Coo.t] accumulates [(row, col, value)] triplets in any order,
    possibly with duplicates; {!Csr.of_coo} sorts and sums duplicates.
    This is the natural output format of state-space exploration and of
    matrix-diagram flattening. *)

type t

val create : rows:int -> cols:int -> t
(** Fresh empty builder for a [rows x cols] matrix. *)

val rows : t -> int

val cols : t -> int

val nnz : t -> int
(** Number of accumulated triplets (before duplicate folding). *)

val add : t -> int -> int -> float -> unit
(** [add t i j v] appends triplet [(i, j, v)].  Zero values are ignored.
    @raise Invalid_argument if the indices are out of bounds. *)

val iter : (int -> int -> float -> unit) -> t -> unit
(** Iterate triplets in insertion order. *)

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t

val to_triplets : t -> (int * int * float) list

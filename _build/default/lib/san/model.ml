module Dynarray = Mdl_util.Dynarray
module Csr = Mdl_sparse.Csr
module Coo = Mdl_sparse.Coo

let src = Logs.Src.create "mdl.san" ~doc:"compositional model exploration"

module Log = (val Logs.src_log src : Logs.LOG)

type local_state = int array

type effect = local_state -> (local_state * float) list

type event = {
  label : string;
  rate : float;
  effects : effect array;
}

type component = {
  name : string;
  initial : local_state;
}

type t = {
  comps : component array;
  evts : event list;
}

let make ~components ~events =
  if Array.length components = 0 then invalid_arg "Model.make: no components";
  List.iter
    (fun e ->
      if Array.length e.effects <> Array.length components then
        invalid_arg
          (Printf.sprintf "Model.make: event %s has %d effects for %d components" e.label
             (Array.length e.effects) (Array.length components));
      if e.rate <= 0.0 then
        invalid_arg (Printf.sprintf "Model.make: event %s has non-positive rate" e.label))
    events;
  { comps = components; evts = events }

let components t = t.comps

let events t = t.evts

let identity_effect s = [ (s, 1.0) ]

module State_table = Hashtbl.Make (struct
  type t = int array

  (* Monomorphic equality: this is the hottest comparison in state-space
     exploration. *)
  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
    go 0

  let hash = Mdl_util.Hashx.int_array
end)

type interner = {
  index_of : int State_table.t;
  states : local_state Dynarray.t;
}

let new_interner () = { index_of = State_table.create 64; states = Dynarray.create () }

let intern interner s =
  match State_table.find_opt interner.index_of s with
  | Some i -> i
  | None ->
      let i = Dynarray.length interner.states in
      let s = Array.copy s in
      State_table.add interner.index_of s i;
      Dynarray.push interner.states s;
      i

type exploration = {
  model : t;
  local_spaces : local_state array array;
  statespace : Mdl_md.Statespace.t;
  descriptor : Mdl_kron.Kronecker.t;
  initial_tuple : int array;
}

(* Canonicalise an exploration: keep only local states occurring in some
   reachable tuple, order each level's local states lexicographically by
   their encoding (so the result is independent of discovery order and
   of the exploration strategy), remap all tuples, and build the final
   local spaces, Kronecker descriptor and state space. *)
let finalize t interners old_tuples old_initial =
  let ncomp = Array.length t.comps in
  (* occurrence masks *)
  let occurring =
    Array.init ncomp (fun k -> Array.make (Dynarray.length interners.(k).states) false)
  in
  List.iter
    (fun tuple -> Array.iteri (fun k i -> occurring.(k).(i) <- true) tuple)
    old_tuples;
  (* canonical order of the occurring local states *)
  let remap = Array.init ncomp (fun k -> Array.make (Dynarray.length interners.(k).states) (-1)) in
  let local_spaces =
    Array.init ncomp (fun k ->
        let occ = ref [] in
        Array.iteri
          (fun i present ->
            if present then occ := Dynarray.get interners.(k).states i :: !occ)
          occurring.(k);
        let sorted = Array.of_list !occ in
        Array.sort compare sorted;
        Array.iteri
          (fun new_idx s ->
            match State_table.find_opt interners.(k).index_of s with
            | Some old_idx -> remap.(k).(old_idx) <- new_idx
            | None -> assert false)
          sorted;
        sorted)
  in
  let remap_tuple tuple = Array.mapi (fun k i -> remap.(k).(i)) tuple in
  let sizes = Array.map Array.length local_spaces in
  (* Per-event local matrices over the final local spaces; transitions
     into non-occurring local states cannot fire in any reachable global
     state and are dropped. *)
  let kron_events =
    List.filter_map
      (fun e ->
        let locals_ok = ref true in
        let locals =
          Array.mapi
            (fun k n ->
              let coo = Coo.create ~rows:n ~cols:n in
              for s = 0 to n - 1 do
                List.iter
                  (fun (s', w) ->
                    if w <= 0.0 then
                      invalid_arg
                        (Printf.sprintf "Model.explore: event %s has non-positive weight"
                           e.label);
                    match State_table.find_opt interners.(k).index_of s' with
                    | Some old_j ->
                        let j = remap.(k).(old_j) in
                        if j >= 0 then Coo.add coo s j w
                    | None -> ())
                  (e.effects.(k) local_spaces.(k).(s))
              done;
              let m = Csr.of_coo coo in
              if Csr.nnz m = 0 then locals_ok := false;
              m)
            sizes
        in
        if !locals_ok then
          Some { Mdl_kron.Kronecker.label = e.label; rate = e.rate; locals }
        else None)
      t.evts
  in
  let descriptor = Mdl_kron.Kronecker.make ~sizes kron_events in
  let statespace =
    Mdl_md.Statespace.of_tuples ~levels:ncomp (List.map remap_tuple old_tuples)
  in
  {
    model = t;
    local_spaces;
    statespace;
    descriptor;
    initial_tuple = remap_tuple old_initial;
  }

let explore ?(max_states = 5_000_000) t =
  let ncomp = Array.length t.comps in
  let interners = Array.init ncomp (fun _ -> new_interner ()) in
  let initial_tuple =
    Array.mapi (fun k comp -> intern interners.(k) comp.initial) t.comps
  in
  let evts = Array.of_list t.evts in
  let visited = State_table.create 4096 in
  let frontier = Queue.create () in
  let tuples = Dynarray.create () in
  State_table.add visited initial_tuple ();
  Queue.add initial_tuple frontier;
  Dynarray.push tuples initial_tuple;
  let succ_buf = Array.make ncomp [||] in
  let next_buf = Array.make ncomp 0 in
  while not (Queue.is_empty frontier) do
    let tuple = Queue.pop frontier in
    for e = 0 to Array.length evts - 1 do
      let enabled = ref true in
      for k = 0 to ncomp - 1 do
        if !enabled then begin
          let s = Dynarray.get interners.(k).states tuple.(k) in
          match evts.(e).effects.(k) s with
          | [] -> enabled := false
          | succs -> succ_buf.(k) <- Array.of_list succs
        end
      done;
      if !enabled then begin
        (* Cross product of per-component successors, interned on use. *)
        let rec expand k =
          if k = ncomp then begin
            if not (State_table.mem visited next_buf) then begin
              if State_table.length visited >= max_states then
                failwith (Printf.sprintf "Model.explore: more than %d states" max_states);
              let next = Array.copy next_buf in
              State_table.add visited next ();
              Queue.add next frontier;
              Dynarray.push tuples next
            end
          end
          else
            Array.iter
              (fun (s', _w) ->
                next_buf.(k) <- intern interners.(k) s';
                expand (k + 1))
              succ_buf.(k)
        in
        expand 0
      end
    done
  done;
  Log.debug (fun m ->
      m "explore: %d states, local spaces %s" (Dynarray.length tuples)
        (String.concat "/"
           (Array.to_list
              (Array.map (fun it -> string_of_int (Dynarray.length it.states)) interners))));
  finalize t interners (Dynarray.to_list tuples) initial_tuple

let explore_symbolic ?(max_states = 50_000_000) t =
  let ncomp = Array.length t.comps in
  let interners = Array.init ncomp (fun _ -> new_interner ()) in
  let initial_tuple =
    Array.mapi (fun k comp -> intern interners.(k) comp.initial) t.comps
  in
  let evts = Array.of_list t.evts in
  let man = Mdl_md.Set_mdd.manager ~levels:ncomp in
  (* Per-(event, level, local state) successor memo; successor local
     states are interned on first evaluation. *)
  let rel_memo : (int * int * int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let rel e level old_idx =
    let key = (e, level, old_idx) in
    match Hashtbl.find_opt rel_memo key with
    | Some r -> r
    | None ->
        let k = level - 1 in
        let s = Dynarray.get interners.(k).states old_idx in
        let r =
          List.map
            (fun (s', w) ->
              if w <= 0.0 then
                invalid_arg
                  (Printf.sprintf "Model.explore_symbolic: event %s has non-positive weight"
                     evts.(e).label);
              intern interners.(k) s')
            (evts.(e).effects.(k) s)
        in
        (* Runaway guard: the local spaces of a finite model are bounded
           by its state count, so unbounded interner growth means the
           model has (more than) [max_states] states. *)
        if Dynarray.length interners.(k).states > max_states then
          failwith (Printf.sprintf "Model.explore_symbolic: more than %d states" max_states);
        Hashtbl.add rel_memo key r;
        r
  in
  (* An event's top level: the root-most level whose effect is not the
     shared [identity_effect] closure (saturation fires an event inside
     nodes of its top level, which is sound only when everything closer
     to the root is identity).  Physical equality can only certify a
     level as identity when the model author passed [identity_effect];
     unknown effects count as touched, which merely costs efficiency. *)
  let top_of e =
    let rec scan k =
      if k >= ncomp then ncomp (* all-identity: a no-op event *)
      else if e.effects.(k) == identity_effect then scan (k + 1)
      else k + 1
    in
    scan 0
  in
  let tops = Array.map top_of evts in
  let rels = Array.init (Array.length evts) rel in
  let reachable =
    Mdl_md.Set_mdd.saturation man ~rels ~tops
      (Mdl_md.Set_mdd.singleton man initial_tuple)
  in
  if Mdl_md.Set_mdd.count man reachable > max_states then
    failwith (Printf.sprintf "Model.explore_symbolic: more than %d states" max_states);
  Log.debug (fun m ->
      m "explore_symbolic: %d states, %d set-MDD nodes"
        (Mdl_md.Set_mdd.count man reachable)
        (Mdl_md.Set_mdd.num_nodes man));
  let old_tuples = ref [] in
  Mdl_md.Set_mdd.iter man reachable (fun s -> old_tuples := Array.copy s :: !old_tuples);
  finalize t interners !old_tuples initial_tuple

let local_index exp l s =
  if l < 1 || l > Array.length exp.local_spaces then
    invalid_arg "Model.local_index: level out of range";
  let space = exp.local_spaces.(l - 1) in
  let rec find i = if i >= Array.length space then None else if space.(i) = s then Some i else find (i + 1) in
  find 0

let md_of exp =
  Mdl_md.Compact.normalize
    (Mdl_md.Compact.merge_terms (Mdl_kron.Kronecker.to_md exp.descriptor))

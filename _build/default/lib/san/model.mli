(** A compositional Markovian modelling formalism in the
    stochastic-automata-network style — the substrate that plays the
    role of Möbius' SAN formalism + Rep/Join composer in the paper's
    tool chain.

    A model is a vector of {e components} (one per MD level) and a set
    of {e events}.  A component's local state is encoded as an [int
    array] (any canonical encoding the model author chooses).  An event
    has a base rate and, per component, a {e local effect}: a function
    from local state to weighted successor local states.  The event is
    enabled in a global state iff every component's effect list is
    non-empty, and fires into each combination of successors with rate
    [rate * product of weights] — exactly the Kronecker semantics
    [R = sum_e rate_e (W_e^1 (X) .. (X) W_e^L)], so guards and
    probabilistic branching must be local to a level (conjunctive
    across levels).

    {!explore} performs explicit reachability analysis (the stand-in for
    the paper's symbolic state-space generation), discovers the
    per-level local state spaces, and compiles the model to a
    {!Mdl_kron.Kronecker.t} descriptor — from which the matrix diagram
    is one {!Mdl_kron.Kronecker.to_md} away. *)

type local_state = int array

type effect = local_state -> (local_state * float) list
(** Weighted successors; [\[\]] = disabled; identity = [\[(s, 1.)\]].
    Weights must be positive. *)

type event = {
  label : string;
  rate : float;
  effects : effect array;  (** one per component *)
}

type component = {
  name : string;
  initial : local_state;
}

type t

val make : components:component array -> events:event list -> t
(** @raise Invalid_argument on empty components or events with the wrong
    number of effects. *)

val components : t -> component array

val events : t -> event list

val identity_effect : effect
(** [fun s -> \[(s, 1.)\]] — for levels an event does not touch. *)

type exploration = {
  model : t;
  local_spaces : local_state array array;
      (** [local_spaces.(l-1).(i)] is the decoded local state [i] of
          level [l]; indices are the MD level index sets *)
  statespace : Mdl_md.Statespace.t;
      (** reachable global states, as tuples of local indices *)
  descriptor : Mdl_kron.Kronecker.t;
  initial_tuple : int array;  (** index tuple of the initial state *)
}

val explore : ?max_states:int -> t -> exploration
(** Breadth-first reachability from the initial state.
    @raise Failure if more than [max_states] (default 5_000_000) states
    are reached, or if the model deadlocks the exploration entirely
    (no reachable state).

    The result is canonical: local states are ordered lexicographically
    by their encoding and only states occurring in some reachable tuple
    are kept, so {!explore} and {!explore_symbolic} produce identical
    explorations. *)

val explore_symbolic : ?max_states:int -> t -> exploration
(** Symbolic reachability: the reachable set is computed as a
    hash-consed set MDD ({!Mdl_md.Set_mdd}) by chained event-image
    fixpoint iteration — the style of state-space generation the paper's
    tool chain uses, and dramatically faster than explicit BFS on large
    structured models.  Produces the same (canonical) exploration as
    {!explore}.  [max_states] defaults to 50_000_000 (the set itself is
    symbolic; enumeration happens only once at the end). *)

val local_index : exploration -> int -> local_state -> int option
(** Index of a local state in a level's discovered space. *)

val md_of : exploration -> Mdl_md.Md.t
(** The matrix diagram of the explored model: [Kronecker.to_md]
    followed by {!Mdl_md.Compact.merge_terms} (parallel events merge
    into per-slice nodes, so replica symmetries become visible to the
    per-node lumping conditions) and {!Mdl_md.Compact.normalize}
    (canonical coefficient scaling, merging proportional nodes). *)

lib/san/model.ml: Array Hashtbl List Logs Mdl_kron Mdl_md Mdl_sparse Mdl_util Printf Queue String

lib/san/model.mli: Mdl_kron Mdl_md

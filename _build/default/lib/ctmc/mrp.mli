(** Markov reward processes (Definition 1 of the paper).

    An MRP is a CTMC together with a rate-reward vector [r] and an
    initial probability distribution [pi_ini].  High-level measures
    (performance, dependability, availability) are expectations of [r]
    under stationary or transient distributions; see {!Measures}. *)

type t

val make :
  ctmc:Ctmc.t -> rewards:Mdl_sparse.Vec.t -> initial:Mdl_sparse.Vec.t -> t
(** @raise Invalid_argument if the vector sizes do not match the chain,
    if [initial] has a negative entry, or if [initial] does not sum to 1
    (within tolerance). *)

val uniform_initial : int -> Mdl_sparse.Vec.t
(** Uniform distribution over [n] states. *)

val point_initial : int -> int -> Mdl_sparse.Vec.t
(** [point_initial n s] is the distribution concentrated on state [s]. *)

val ctmc : t -> Ctmc.t

val size : t -> int

val rewards : t -> Mdl_sparse.Vec.t

val initial : t -> Mdl_sparse.Vec.t

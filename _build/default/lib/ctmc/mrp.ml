type t = {
  ctmc : Ctmc.t;
  rewards : Mdl_sparse.Vec.t;
  initial : Mdl_sparse.Vec.t;
}

let make ~ctmc ~rewards ~initial =
  let n = Ctmc.size ctmc in
  if Array.length rewards <> n then invalid_arg "Mrp.make: reward vector size mismatch";
  if Array.length initial <> n then invalid_arg "Mrp.make: initial vector size mismatch";
  Array.iter
    (fun p -> if p < 0.0 then invalid_arg "Mrp.make: negative initial probability")
    initial;
  let total = Mdl_sparse.Vec.sum initial in
  if not (Mdl_util.Floatx.approx_eq ~eps:1e-6 total 1.0) then
    invalid_arg (Printf.sprintf "Mrp.make: initial distribution sums to %g, not 1" total);
  { ctmc; rewards; initial }

let uniform_initial n =
  if n <= 0 then invalid_arg "Mrp.uniform_initial: empty state space";
  Array.make n (1.0 /. float_of_int n)

let point_initial n s =
  if s < 0 || s >= n then invalid_arg "Mrp.point_initial: state out of bounds";
  let v = Array.make n 0.0 in
  v.(s) <- 1.0;
  v

let ctmc t = t.ctmc

let size t = Ctmc.size t.ctmc

let rewards t = t.rewards

let initial t = t.initial

lib/ctmc/dtmc.ml: Array Ctmc Float Mdl_sparse Printf Solver

lib/ctmc/mrp.ml: Array Ctmc Mdl_sparse Mdl_util Printf

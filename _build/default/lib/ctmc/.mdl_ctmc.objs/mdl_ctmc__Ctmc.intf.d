lib/ctmc/ctmc.mli: Format Mdl_sparse

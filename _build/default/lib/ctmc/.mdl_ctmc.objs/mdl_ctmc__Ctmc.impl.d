lib/ctmc/ctmc.ml: Array Float Format Fun Mdl_sparse Printf Queue

lib/ctmc/absorption.mli: Ctmc Mdl_sparse Solver

lib/ctmc/mrp.mli: Ctmc Mdl_sparse

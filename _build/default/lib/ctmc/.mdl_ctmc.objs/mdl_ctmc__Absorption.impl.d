lib/ctmc/absorption.ml: Array Ctmc Float Mdl_sparse Printf Queue Solver

lib/ctmc/solver.ml: Array Ctmc Mdl_sparse Mdl_util

lib/ctmc/measures.ml: Array Mrp Solver

lib/ctmc/measures.mli: Mdl_sparse Mrp

lib/ctmc/solver.mli: Ctmc Mdl_sparse

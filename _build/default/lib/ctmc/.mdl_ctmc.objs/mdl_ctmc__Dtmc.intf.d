lib/ctmc/dtmc.mli: Ctmc Mdl_sparse Solver

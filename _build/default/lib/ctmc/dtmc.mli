(** Discrete-time Markov chains.

    CTMC analysis keeps producing DTMCs — the uniformised chain
    [P = I + Q/lambda] behind the power method and uniformisation, and
    the embedded jump chain — and the lumping theory of the paper (via
    Buchholz 1994) applies to them verbatim with [P] in place of [R].
    This module gives them a first-class, validated type. *)

type t

val of_matrix : ?eps:float -> Mdl_sparse.Csr.t -> t
(** @raise Invalid_argument unless the matrix is square, entrywise
    non-negative and each row sums to 1 (within [eps], default 1e-9). *)

val size : t -> int

val matrix : t -> Mdl_sparse.Csr.t

val uniformized_of_ctmc : ?lambda:float -> Ctmc.t -> t * float
(** The uniformised DTMC of a CTMC and the rate used
    (see {!Ctmc.uniformized}). *)

val embedded_of_ctmc : Ctmc.t -> t
(** The embedded jump chain: [P(i,j) = R(i,j)/R(i,S)] for non-absorbing
    states; absorbing states ([R(i,S) = 0]) get a self-loop. *)

val step : t -> Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t
(** One step of the distribution: [pi * P].
    @raise Invalid_argument on size mismatch. *)

val distribution_after : t -> int -> Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t
(** [n]-step distribution. @raise Invalid_argument if [n < 0]. *)

val stationary :
  ?tol:float -> ?max_iter:int -> t -> Mdl_sparse.Vec.t * Solver.stats
(** Power iteration; converges for aperiodic chains.

    Lumping: the flat algorithms of [Mdl_lumping] operate on arbitrary
    non-negative matrices, so DTMCs lump by passing {!matrix} to
    [State_lumping.coarsest] and [Quotient.rates] directly — the
    quotient of a stochastic matrix is stochastic (tested in the lumping
    suite). *)

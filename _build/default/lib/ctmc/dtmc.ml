module Csr = Mdl_sparse.Csr
module Coo = Mdl_sparse.Coo
module Vec = Mdl_sparse.Vec

type t = { p : Csr.t }

let of_matrix ?(eps = 1e-9) p =
  if Csr.rows p <> Csr.cols p then invalid_arg "Dtmc.of_matrix: matrix is not square";
  Csr.iter
    (fun i j v ->
      if v < 0.0 then
        invalid_arg (Printf.sprintf "Dtmc.of_matrix: negative entry %g at (%d,%d)" v i j))
    p;
  Array.iteri
    (fun i s ->
      if Float.abs (s -. 1.0) > eps then
        invalid_arg (Printf.sprintf "Dtmc.of_matrix: row %d sums to %g, not 1" i s))
    (Csr.row_sums p);
  { p }

let size t = Csr.rows t.p

let matrix t = t.p

let uniformized_of_ctmc ?lambda ctmc =
  let p, rate = Ctmc.uniformized ?lambda ctmc in
  (of_matrix p, rate)

let embedded_of_ctmc ctmc =
  let r = Ctmc.rates ctmc in
  let n = Ctmc.size ctmc in
  let coo = Coo.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    let exit = Ctmc.exit_rate ctmc i in
    if exit = 0.0 then Coo.add coo i i 1.0
    else Csr.iter_row r i (fun j v -> Coo.add coo i j (v /. exit))
  done;
  of_matrix (Csr.of_coo coo)

let step t pi =
  if Array.length pi <> size t then invalid_arg "Dtmc.step: size mismatch";
  Csr.vec_mul pi t.p

let distribution_after t n pi =
  if n < 0 then invalid_arg "Dtmc.distribution_after: negative step count";
  let current = ref (Vec.copy pi) in
  for _ = 1 to n do
    current := step t !current
  done;
  !current

let stationary ?tol ?max_iter t = Solver.power ?tol ?max_iter (Solver.operator_of_csr t.p)

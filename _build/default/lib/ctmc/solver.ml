module Vec = Mdl_sparse.Vec
module Csr = Mdl_sparse.Csr

type stats = { iterations : int; residual : float; converged : bool }

type operator = { dim : int; apply : Vec.t -> Vec.t }

let operator_of_csr m =
  if Csr.rows m <> Csr.cols m then invalid_arg "Solver.operator_of_csr: not square";
  { dim = Csr.rows m; apply = (fun x -> Csr.vec_mul x m) }

let power ?(tol = 1e-12) ?(max_iter = 100_000) ?initial op =
  let pi =
    match initial with
    | None -> Array.make op.dim (1.0 /. float_of_int op.dim)
    | Some v ->
        if Array.length v <> op.dim then invalid_arg "Solver.power: initial size mismatch";
        Vec.copy v
  in
  let rec loop pi k =
    let next = op.apply pi in
    Vec.normalize1 next;
    let diff = Vec.diff_inf next pi in
    if diff <= tol then (next, { iterations = k; residual = diff; converged = true })
    else if k >= max_iter then
      (next, { iterations = k; residual = diff; converged = false })
    else loop next (k + 1)
  in
  loop pi 1

let steady_state ?tol ?max_iter ctmc =
  let p, _lambda = Ctmc.uniformized ctmc in
  power ?tol ?max_iter (operator_of_csr p)

let steady_state_gauss_seidel ?(tol = 1e-12) ?(max_iter = 10_000) ctmc =
  (* Solve pi Q = 0 by in-place sweeps over the transposed generator:
     pi(j) = (sum_{i<>j} pi(i) Q(i,j)) / -Q(j,j).  Rows of Q^T hold the
     incoming rates of state j; the diagonal is extracted on the fly. *)
  let n = Ctmc.size ctmc in
  let qt = Csr.transpose (Ctmc.generator ctmc) in
  let pi = Array.make n (1.0 /. float_of_int n) in
  let sweep () =
    for j = 0 to n - 1 do
      let incoming = ref 0.0 and diag = ref 0.0 in
      Csr.iter_row qt j (fun i v -> if i = j then diag := v else incoming := !incoming +. (pi.(i) *. v));
      if !diag < 0.0 then pi.(j) <- !incoming /. -. !diag
    done;
    Vec.normalize1 pi
  in
  let rec loop k prev =
    sweep ();
    let diff = Vec.diff_inf pi prev in
    if diff <= tol then { iterations = k; residual = diff; converged = true }
    else if k >= max_iter then { iterations = k; residual = diff; converged = false }
    else loop (k + 1) (Vec.copy pi)
  in
  let stats = loop 1 (Vec.copy pi) in
  (pi, stats)

let poisson_weights ~epsilon ~qt =
  (* Weights w(k) = e^{-qt} (qt)^k / k! for k = 0..r, with r chosen so the
     truncated tail mass is below epsilon.  Computed in a numerically
     safe way by scaling from the mode (a simplified Fox–Glynn). *)
  if qt = 0.0 then [| 1.0 |]
  else begin
    let mode = int_of_float qt in
    (* Generous upper bound on the right truncation point. *)
    let r_max = mode + 10 + int_of_float (8.0 *. sqrt (qt +. 1.0) +. qt) in
    let w = Array.make (r_max + 1) 0.0 in
    w.(mode) <- 1.0;
    (* Unnormalised: w(k+1) = w(k) * qt/(k+1); w(k-1) = w(k) * k/qt. *)
    for k = mode + 1 to r_max do
      w.(k) <- w.(k - 1) *. qt /. float_of_int k
    done;
    for k = mode - 1 downto 0 do
      w.(k) <- w.(k + 1) *. float_of_int (k + 1) /. qt
    done;
    let total = Mdl_util.Floatx.sum_kahan w in
    (* Find the right truncation point covering mass 1 - epsilon. *)
    let target = (1.0 -. epsilon) *. total in
    let acc = ref 0.0 and r = ref r_max in
    (try
       for k = 0 to r_max do
         acc := !acc +. w.(k);
         if !acc >= target then begin
           r := k;
           raise Exit
         end
       done
     with Exit -> ());
    let w = Array.sub w 0 (!r + 1) in
    Array.map (fun x -> x /. total) w
  end

let transient_operator ?(epsilon = 1e-12) ~t ~lambda op pi0 =
  if t < 0.0 then invalid_arg "Solver.transient_operator: negative time";
  if Array.length pi0 <> op.dim then
    invalid_arg "Solver.transient_operator: initial size mismatch";
  if t = 0.0 then Vec.copy pi0
  else begin
    let weights = poisson_weights ~epsilon ~qt:(lambda *. t) in
    let result = Array.make (Array.length pi0) 0.0 in
    let current = ref (Vec.copy pi0) in
    Array.iteri
      (fun k w ->
        if k > 0 then current := op.apply !current;
        Vec.axpy ~alpha:w !current result)
      weights;
    result
  end

let transient ?epsilon ~t ctmc pi0 =
  if t < 0.0 then invalid_arg "Solver.transient: negative time";
  if Array.length pi0 <> Ctmc.size ctmc then
    invalid_arg "Solver.transient: initial size mismatch";
  let p, lambda = Ctmc.uniformized ctmc in
  transient_operator ?epsilon ~t ~lambda (operator_of_csr p) pi0

let expected_reward pi r = Vec.dot pi r

(** Absorption analysis: mean time to absorption (MTTF-style measures)
    and absorption probabilities — the complementary dependability
    quantities to the steady-state/transient rewards of {!Measures}. *)

val mean_time_to_absorption :
  ?tol:float ->
  ?max_iter:int ->
  Ctmc.t ->
  absorbing:(int -> bool) ->
  Mdl_sparse.Vec.t * Solver.stats
(** [mean_time_to_absorption c ~absorbing] is the vector [t] with [t(i)]
    the expected time until the chain started in [i] first enters an
    absorbing state ([0] on absorbing states).  States marked absorbing
    have their outgoing rates ignored.  Computed by Gauss–Seidel on
    [exit(i) t(i) = 1 + sum_j R(i,j) t(j)].
    @raise Invalid_argument if no state is absorbing, or if some
    transient state cannot reach an absorbing one (infinite
    expectation). *)

val absorption_probabilities :
  ?tol:float ->
  ?max_iter:int ->
  Ctmc.t ->
  absorbing:(int -> bool) ->
  target:(int -> bool) ->
  Mdl_sparse.Vec.t * Solver.stats
(** [absorption_probabilities c ~absorbing ~target] is the vector [h]
    with [h(i)] the probability that the chain started in [i] is
    absorbed in a state satisfying [target] (which must imply
    [absorbing]).  [h = 1] on target states, [0] on other absorbing
    states.
    @raise Invalid_argument if no state is absorbing or a target state
    is not absorbing. *)

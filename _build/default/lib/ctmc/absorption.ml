module Csr = Mdl_sparse.Csr

(* States from which an absorbing state is reachable (backward BFS over
   the transition graph, seeded with the absorbing set). *)
let can_reach_absorbing ctmc absorbing =
  let n = Ctmc.size ctmc in
  let rt = Csr.transpose (Ctmc.rates ctmc) in
  let reached = Array.init n absorbing in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if reached.(i) then Queue.add i queue
  done;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    Csr.iter_row rt j (fun i v ->
        if v > 0.0 && (not reached.(i)) && not (absorbing i) then begin
          reached.(i) <- true;
          Queue.add i queue
        end)
  done;
  reached

let check_absorbing_set ctmc absorbing fn =
  let n = Ctmc.size ctmc in
  let any = ref false in
  for i = 0 to n - 1 do
    if absorbing i then any := true
  done;
  if not !any then invalid_arg (Printf.sprintf "Absorption.%s: no absorbing state" fn);
  n

(* Gauss-Seidel sweeps for x(i) = (c(i) + sum_{j<>i} R(i,j) x(j)) /
   (exit(i) - R(i,i)) on transient states, x fixed elsewhere. *)
let gauss_seidel ?(tol = 1e-12) ?(max_iter = 100_000) ctmc ~transient ~constant x =
  let r = Ctmc.rates ctmc in
  let n = Ctmc.size ctmc in
  let rec loop k =
    let delta = ref 0.0 in
    for i = 0 to n - 1 do
      if transient.(i) then begin
        let acc = ref 0.0 and diag = ref 0.0 in
        Csr.iter_row r i (fun j v -> if j = i then diag := v else acc := !acc +. (v *. x.(j)));
        let denom = Ctmc.exit_rate ctmc i -. !diag in
        let x' = (constant.(i) +. !acc) /. denom in
        delta := Float.max !delta (Float.abs (x' -. x.(i)));
        x.(i) <- x'
      end
    done;
    if !delta <= tol then { Solver.iterations = k; residual = !delta; converged = true }
    else if k >= max_iter then
      { Solver.iterations = k; residual = !delta; converged = false }
    else loop (k + 1)
  in
  loop 1

let mean_time_to_absorption ?tol ?max_iter ctmc ~absorbing =
  let n = check_absorbing_set ctmc absorbing "mean_time_to_absorption" in
  let reached = can_reach_absorbing ctmc absorbing in
  for i = 0 to n - 1 do
    if not reached.(i) then
      invalid_arg
        (Printf.sprintf
           "Absorption.mean_time_to_absorption: state %d cannot reach an absorbing state"
           i)
  done;
  let transient = Array.init n (fun i -> not (absorbing i)) in
  let t = Array.make n 0.0 in
  let stats = gauss_seidel ?tol ?max_iter ctmc ~transient ~constant:(Array.make n 1.0) t in
  (t, stats)

let absorption_probabilities ?tol ?max_iter ctmc ~absorbing ~target =
  let n = check_absorbing_set ctmc absorbing "absorption_probabilities" in
  for i = 0 to n - 1 do
    if target i && not (absorbing i) then
      invalid_arg
        (Printf.sprintf "Absorption.absorption_probabilities: target state %d not absorbing"
           i)
  done;
  let transient = Array.init n (fun i -> not (absorbing i)) in
  let h = Array.init n (fun i -> if target i then 1.0 else 0.0) in
  (* States that cannot reach any absorbing state would make the linear
     system singular; treat unreachable-from-absorbing transients as
     probability 0 and keep them out of the sweep. *)
  let reached = can_reach_absorbing ctmc absorbing in
  let transient = Array.mapi (fun i tr -> tr && reached.(i)) transient in
  let stats =
    gauss_seidel ?tol ?max_iter ctmc ~transient ~constant:(Array.make n 0.0) h
  in
  (h, stats)

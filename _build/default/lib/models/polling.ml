module Model = Mdl_san.Model
module Decomposed = Mdl_core.Decomposed

type params = {
  customers : int;
  servers : int;
  queues : int;
  think : float;
  walk : float;
  service : float;
}

let default ~customers =
  { customers; servers = 2; queues = 3; think = 1.0; walk = 4.0; service = 3.0 }

(* Level-2 encoding: [| pos0; ph0; ..; pos_{servers-1}; ph_{servers-1};
   q0; ..; q_{queues-1} |], as in the tandem MSMQ component. *)

let pos p s i = ignore p; s.(2 * i)

let phase p s i = ignore p; s.((2 * i) + 1)

let queue p s k = s.((2 * p.servers) + k)

let with_server p s i po ph =
  ignore p;
  let s' = Array.copy s in
  s'.(2 * i) <- po;
  s'.((2 * i) + 1) <- ph;
  s'

let with_queue p s k d =
  let s' = Array.copy s in
  s'.((2 * p.servers) + k) <- s'.((2 * p.servers) + k) + d;
  s'

let in_service p s k =
  let n = ref 0 in
  for i = 0 to p.servers - 1 do
    if pos p s i = k && phase p s i = 1 then incr n
  done;
  !n

let waiting p s k = queue p s k - in_service p s k

let id = Model.identity_effect

let model p =
  if p.customers < 1 || p.servers < 1 || p.queues < 1 then
    invalid_arg "Polling.model: counts must be positive";
  let thinkers = { Model.name = "customers"; initial = [| p.customers |] } in
  let station =
    { Model.name = "station"; initial = Array.make ((2 * p.servers) + p.queues) 0 }
  in
  let submit =
    {
      Model.label = "submit";
      rate = p.think;
      effects =
        [|
          (* rate proportional to the number of thinking customers *)
          (fun s ->
            if s.(0) > 0 then [ ([| s.(0) - 1 |], float_of_int s.(0)) ] else []);
          (fun s ->
            let w = 1.0 /. float_of_int p.queues in
            List.filter_map
              (fun k ->
                if queue p s k < p.customers then Some (with_queue p s k 1, w) else None)
              (List.init p.queues Fun.id));
        |];
    }
  in
  let move i =
    {
      Model.label = Printf.sprintf "move_%d" i;
      rate = p.walk;
      effects =
        [|
          id;
          (fun s ->
            if phase p s i = 1 then []
            else begin
              let po = (pos p s i + 1) mod p.queues in
              let ph = if waiting p s po > 0 then 1 else 0 in
              [ (with_server p s i po ph, 1.0) ]
            end);
        |];
    }
  in
  let serve i =
    {
      Model.label = Printf.sprintf "serve_%d" i;
      rate = p.service;
      effects =
        [|
          (fun s -> if s.(0) < p.customers then [ ([| s.(0) + 1 |], 1.0) ] else []);
          (fun s ->
            if phase p s i = 1 then begin
              let k = pos p s i in
              [ (with_queue p (with_server p s i k 0) k (-1), 1.0) ]
            end
            else []);
        |];
    }
  in
  Model.make
    ~components:[| thinkers; station |]
    ~events:
      ([ submit ]
      @ List.init p.servers move
      @ List.init p.servers serve)

type built = {
  params : params;
  exploration : Model.exploration;
  md : Mdl_md.Md.t;
  rewards_busy_servers : Decomposed.t;
  rewards_queued_jobs : Decomposed.t;
  initial : Decomposed.t;
}

let build p =
  let m = model p in
  let exploration = Model.explore_symbolic m in
  let md = Model.md_of exploration in
  let sizes = Array.map Array.length exploration.Model.local_spaces in
  let station_states = exploration.Model.local_spaces.(1) in
  let rewards_busy_servers =
    Decomposed.of_level ~sizes ~level:2 (fun idx ->
        let s = station_states.(idx) in
        let n = ref 0 in
        for i = 0 to p.servers - 1 do
          if phase p s i = 1 then incr n
        done;
        float_of_int !n)
  in
  let rewards_queued_jobs =
    Decomposed.of_level ~sizes ~level:2 (fun idx ->
        let s = station_states.(idx) in
        let n = ref 0 in
        for k = 0 to p.queues - 1 do
          n := !n + queue p s k
        done;
        float_of_int !n)
  in
  let initial = Decomposed.point ~sizes exploration.Model.initial_tuple in
  { params = p; exploration; md; rewards_busy_servers; rewards_queued_jobs; initial }

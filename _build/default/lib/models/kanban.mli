(** The Kanban manufacturing system (Ciardo & Tilgner) — the classic
    benchmark family of the matrix-diagram / saturation literature.

    Four production cells, each with [cards] kanban cards.  Parts enter
    cell 1, fork synchronously to cells 2 and 3, join synchronously into
    cell 4, and leave.  A cell's local state is [(m, o)]: parts being
    machined and parts finished waiting to move on; [cards - m - o]
    kanban cards are free.  Machining can succeed or send the part back
    for rework.

    Levels: one per cell, in pipeline order.  Cells 2 and 3 are
    {e identical but live at different levels} — per-level compositional
    lumping cannot see that symmetry (Definition 3 is per level), but
    merging their levels with {!Mdl_md.Restructure.merge_adjacent} first
    turns it into an intra-level swap that the algorithm finds: the
    complementarity story of the paper, exercised end to end. *)

type params = {
  cards : int;  (** kanban cards per cell (the scaling parameter N) *)
  enter : float;  (** arrival of raw parts into cell 1 *)
  machine : float array;  (** machining rate per cell (length 4) *)
  ok_prob : float;  (** probability machining succeeds (else rework) *)
  sync12 : float;  (** cell 1 -> cells 2+3 transfer rate *)
  sync34 : float;  (** cells 2+3 -> cell 4 transfer rate *)
  leave : float;  (** finished parts leave cell 4 *)
}

val default : cards:int -> params

val model : params -> Mdl_san.Model.t
(** @raise Invalid_argument if [cards < 1] or [machine] has wrong
    length. *)

type built = {
  params : params;
  exploration : Mdl_san.Model.exploration;
  md : Mdl_md.Md.t;
  rewards_in_system : Mdl_core.Decomposed.t;
      (** total parts present across the four cells *)
  initial : Mdl_core.Decomposed.t;
}

val build : params -> built

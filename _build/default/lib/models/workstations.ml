module Model = Mdl_san.Model
module Decomposed = Mdl_core.Decomposed

type params = {
  stations : int;
  spares : int;
  degrade : float;
  break : float;
  crash : float;
  replace : float;
  restock : float;
}

let default ~stations =
  {
    stations;
    spares = 2;
    degrade = 1.0;
    break = 2.0;
    crash = 0.1;
    replace = 4.0;
    restock = 0.5;
  }

(* Workstation states within the level encoding. *)
let up = 0

let degraded = 1

let down = 2

let id = Model.identity_effect

let with_station s i v =
  let s' = Array.copy s in
  s'.(i) <- v;
  s'

let model p =
  if p.stations < 1 then invalid_arg "Workstations.model: stations must be >= 1";
  if p.spares < 0 then invalid_arg "Workstations.model: spares must be >= 0";
  let store = { Model.name = "store"; initial = [| p.spares |] } in
  let stations = { Model.name = "stations"; initial = Array.make p.stations up } in
  let station_event label rate from_state to_state uses_spare i =
    {
      Model.label = Printf.sprintf "%s_%d" label i;
      rate;
      effects =
        [|
          (if uses_spare then fun s ->
             if s.(0) > 0 then [ ([| s.(0) - 1 |], 1.0) ] else []
           else id);
          (fun s -> if s.(i) = from_state then [ (with_station s i to_state, 1.0) ] else []);
        |];
    }
  in
  let restock =
    {
      Model.label = "restock";
      rate = p.restock;
      effects =
        [| (fun s -> if s.(0) < p.spares then [ ([| s.(0) + 1 |], 1.0) ] else []); id |];
    }
  in
  let range f = List.init p.stations f in
  Model.make
    ~components:[| store; stations |]
    ~events:
      ((if p.restock > 0.0 then [ restock ] else [])
      @ range (station_event "degrade" p.degrade up degraded false)
      @ range (station_event "break" p.break degraded down false)
      @ range (station_event "crash" p.crash up down false)
      @ range (station_event "replace" p.replace down up true))

type built = {
  params : params;
  exploration : Model.exploration;
  md : Mdl_md.Md.t;
  rewards_operational : Decomposed.t;
  initial : Decomposed.t;
}

let build p =
  let m = model p in
  let exploration = Model.explore_symbolic m in
  let md = Model.md_of exploration in
  let sizes = Array.map Array.length exploration.Model.local_spaces in
  let station_states = exploration.Model.local_spaces.(1) in
  let rewards_operational =
    Decomposed.of_level ~sizes ~level:2 (fun i ->
        Array.fold_left
          (fun acc st -> if st = up then acc +. 1.0 else acc)
          0.0 station_states.(i))
  in
  let initial = Decomposed.point ~sizes exploration.Model.initial_tuple in
  { params = p; exploration; md; rewards_operational; initial }

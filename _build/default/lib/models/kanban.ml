module Model = Mdl_san.Model
module Decomposed = Mdl_core.Decomposed

type params = {
  cards : int;
  enter : float;
  machine : float array;
  ok_prob : float;
  sync12 : float;
  sync34 : float;
  leave : float;
}

let default ~cards =
  {
    cards;
    enter = 1.0;
    machine = [| 3.0; 2.0; 2.0; 4.0 |];
    ok_prob = 0.9;
    sync12 = 5.0;
    sync34 = 5.0;
    leave = 2.0;
  }

(* Cell local state: [| m; o |] with m + o <= cards. *)

let id = Model.identity_effect

let cell_effect f = f

(* A part starts being machined in the cell (needs a free card). *)
let take cards s = if s.(0) + s.(1) < cards then [ ([| s.(0) + 1; s.(1) |], 1.0) ] else []

(* A finished part leaves the cell's output store. *)
let release s = if s.(1) > 0 then [ ([| s.(0); s.(1) - 1 |], 1.0) ] else []

let model p =
  if p.cards < 1 then invalid_arg "Kanban.model: cards must be >= 1";
  if Array.length p.machine <> 4 then invalid_arg "Kanban.model: machine rates must have length 4";
  let cell i = { Model.name = Printf.sprintf "cell%d" (i + 1); initial = [| 0; 0 |] } in
  let machine_ok i =
    {
      Model.label = Printf.sprintf "ok_%d" (i + 1);
      rate = p.machine.(i) *. p.ok_prob;
      effects =
        Array.init 4 (fun k ->
            if k = i then
              cell_effect (fun s ->
                  if s.(0) > 0 then [ ([| s.(0) - 1; s.(1) + 1 |], 1.0) ] else [])
            else id);
    }
  in
  let machine_rework i =
    {
      Model.label = Printf.sprintf "rework_%d" (i + 1);
      rate = p.machine.(i) *. (1.0 -. p.ok_prob);
      effects =
        Array.init 4 (fun k ->
            if k = i then cell_effect (fun s -> if s.(0) > 0 then [ (s, 1.0) ] else [])
            else id);
    }
  in
  let enter =
    {
      Model.label = "enter";
      rate = p.enter;
      effects = [| take p.cards; id; id; id |];
    }
  in
  let sync12 =
    {
      Model.label = "sync1_23";
      rate = p.sync12;
      effects = [| release; take p.cards; take p.cards; id |];
    }
  in
  let sync34 =
    {
      Model.label = "sync23_4";
      rate = p.sync34;
      effects = [| id; release; release; take p.cards |];
    }
  in
  let leave =
    { Model.label = "leave"; rate = p.leave; effects = [| id; id; id; release |] }
  in
  Model.make
    ~components:(Array.init 4 cell)
    ~events:
      ([ enter; sync12; sync34; leave ]
      @ List.init 4 machine_ok
      @ List.init 4 machine_rework)

type built = {
  params : params;
  exploration : Model.exploration;
  md : Mdl_md.Md.t;
  rewards_in_system : Decomposed.t;
  initial : Decomposed.t;
}

let build p =
  let m = model p in
  let exploration = Model.explore_symbolic m in
  let md = Model.md_of exploration in
  let sizes = Array.map Array.length exploration.Model.local_spaces in
  let factors =
    Array.mapi
      (fun k n ->
        Array.init n (fun i ->
            let s = exploration.Model.local_spaces.(k).(i) in
            float_of_int (s.(0) + s.(1))))
      sizes
  in
  let rewards_in_system =
    Decomposed.make ~factors ~combine:(fun values -> Array.fold_left ( +. ) 0.0 values)
  in
  let initial = Decomposed.point ~sizes exploration.Model.initial_tuple in
  { params = p; exploration; md; rewards_in_system; initial }

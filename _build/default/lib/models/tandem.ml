module Model = Mdl_san.Model
module Decomposed = Mdl_core.Decomposed

type params = {
  jobs : int;
  max_down : int;
  hyper_dim : int;
  msmq_servers : int;
  msmq_queues : int;
  msmq_walk : float;
  msmq_service : float;
  msmq_arrival : float;
  dispatch : float;
  dispatch_bias : float;
  hyper_service : float;
  fail : float;
  repair : float;
  balance : float;
  transfer : float;
}

let default ~jobs =
  {
    jobs;
    max_down = 2;
    hyper_dim = 3;
    msmq_servers = 3;
    msmq_queues = 4;
    msmq_walk = 1.0;
    msmq_service = 2.0;
    msmq_arrival = 4.0;
    dispatch = 5.0;
    dispatch_bias = 0.75;
    hyper_service = 1.5;
    fail = 0.05;
    repair = 1.0;
    balance = 2.0;
    transfer = 1.0;
  }

(* ---------- encodings ----------

   pools: [| h_in; m_in |]
   hyper: [| q0..q_{H-1}; u0..u_{H-1} |]   (H = 2^hyper_dim; u = 1 when up)
   msmq:  [| pos0; ph0; ..; q0..q_{Q-1} |] (ph = 1 when serving) *)

let num_hyper p = 1 lsl p.hyper_dim

(* hypercube neighbourhood: flip one coordinate bit *)
let neighbours p i = List.init p.hyper_dim (fun b -> i lxor (1 lsl b))

let hyper_q s i = s.(i)

let hyper_up p s i = s.(num_hyper p + i) = 1

let hyper_down_count p s =
  let n = ref 0 in
  for i = 0 to num_hyper p - 1 do
    if not (hyper_up p s i) then incr n
  done;
  !n

let with_q s i d =
  let s' = Array.copy s in
  s'.(i) <- s'.(i) + d;
  s'

let with_up p s i v =
  let s' = Array.copy s in
  s'.(num_hyper p + i) <- v;
  s'

let msmq_pos s i = s.(2 * i)

let msmq_phase s i = s.((2 * i) + 1)

let msmq_q p s k = s.((2 * p.msmq_servers) + k)

let msmq_with_server s i pos phase =
  let s' = Array.copy s in
  s'.(2 * i) <- pos;
  s'.((2 * i) + 1) <- phase;
  s'

let msmq_with_q p s k d =
  let s' = Array.copy s in
  s'.((2 * p.msmq_servers) + k) <- s'.((2 * p.msmq_servers) + k) + d;
  s'

(* Number of servers currently serving at queue [k]. *)
let msmq_in_service p s k =
  let n = ref 0 in
  for i = 0 to p.msmq_servers - 1 do
    if msmq_pos s i = k && msmq_phase s i = 1 then incr n
  done;
  !n

let msmq_waiting p s k = msmq_q p s k - msmq_in_service p s k

(* ---------- events ---------- *)

let id = Model.identity_effect

let model p =
  if p.jobs < 1 then invalid_arg "Tandem.model: jobs must be >= 1";
  if p.max_down < 0 then invalid_arg "Tandem.model: max_down must be >= 0";
  if p.hyper_dim < 1 then invalid_arg "Tandem.model: hyper_dim must be >= 1";
  if p.msmq_servers < 1 || p.msmq_queues < 1 then
    invalid_arg "Tandem.model: msmq topology must be non-empty";
  let j = p.jobs in
  let h = num_hyper p in
  let pools = { Model.name = "pools"; initial = [| 0; j |] } in
  let hyper =
    {
      Model.name = "hypercube";
      initial = Array.append (Array.make h 0) (Array.make h 1);
    }
  in
  let msmq =
    { Model.name = "msmq"; initial = Array.make ((2 * p.msmq_servers) + p.msmq_queues) 0 }
  in
  (* --- pools <-> msmq --- *)
  let msmq_arrive =
    {
      Model.label = "msmq_arrive";
      rate = p.msmq_arrival;
      effects =
        [|
          (fun s -> if s.(1) > 0 then [ ([| s.(0); s.(1) - 1 |], 1.0) ] else []);
          id;
          (fun s ->
            let w = 1.0 /. float_of_int p.msmq_queues in
            List.filter_map
              (fun k -> if msmq_q p s k < j then Some (msmq_with_q p s k 1, w) else None)
              (List.init p.msmq_queues Fun.id));
        |];
    }
  in
  let msmq_move i =
    {
      Model.label = Printf.sprintf "msmq_move_%d" i;
      rate = p.msmq_walk;
      effects =
        [|
          id;
          id;
          (fun s ->
            if msmq_phase s i = 1 then []
            else begin
              let pos' = (msmq_pos s i + 1) mod p.msmq_queues in
              let phase' = if msmq_waiting p s pos' > 0 then 1 else 0 in
              [ (msmq_with_server s i pos' phase', 1.0) ]
            end);
        |];
    }
  in
  let msmq_serve i =
    {
      Model.label = Printf.sprintf "msmq_serve_%d" i;
      rate = p.msmq_service;
      effects =
        [|
          (fun s -> if s.(0) < j then [ ([| s.(0) + 1; s.(1) |], 1.0) ] else []);
          id;
          (fun s ->
            if msmq_phase s i = 1 then begin
              let k = msmq_pos s i in
              [ (msmq_with_q p (msmq_with_server s i k 0) k (-1), 1.0) ]
            end
            else []);
        |];
    }
  in
  (* --- pools <-> hypercube --- *)
  let dispatch =
    {
      Model.label = "dispatch";
      rate = p.dispatch;
      effects =
        [|
          (fun s -> if s.(0) > 0 then [ ([| s.(0) - 1; s.(1) |], 1.0) ] else []);
          (fun s ->
            let q0 = hyper_q s 0 and q1 = hyper_q s 1 in
            let w0 =
              if q0 < q1 then p.dispatch_bias
              else if q0 > q1 then 1.0 -. p.dispatch_bias
              else 0.5
            in
            List.filter
              (fun (_, w) -> w > 0.0)
              (List.filter_map
                 (fun (i, w) -> if hyper_q s i < j then Some (with_q s i 1, w) else None)
                 [ (0, w0); (1, 1.0 -. w0) ]));
          id;
        |];
    }
  in
  let hyper_serve i =
    {
      Model.label = Printf.sprintf "hyper_serve_%d" i;
      rate = p.hyper_service;
      effects =
        [|
          (fun s -> if s.(1) < j then [ ([| s.(0); s.(1) + 1 |], 1.0) ] else []);
          (fun s ->
            if hyper_up p s i && hyper_q s i > 0 then [ (with_q s i (-1), 1.0) ] else []);
          id;
        |];
    }
  in
  (* --- hypercube internal --- *)
  let fail i =
    {
      Model.label = Printf.sprintf "fail_%d" i;
      rate = p.fail;
      effects =
        [|
          id;
          (fun s ->
            if hyper_up p s i && hyper_down_count p s < p.max_down then
              [ (with_up p s i 0, 1.0) ]
            else []);
          id;
        |];
    }
  in
  let repair =
    {
      Model.label = "repair";
      rate = p.repair;
      effects =
        [|
          id;
          (fun s ->
            let failed =
              List.filter (fun i -> not (hyper_up p s i)) (List.init h Fun.id)
            in
            match failed with
            | [] -> []
            | _ ->
                let w = 1.0 /. float_of_int (List.length failed) in
                List.map (fun i -> (with_up p s i 1, w)) failed);
          id;
        |];
    }
  in
  let balance i =
    {
      Model.label = Printf.sprintf "balance_%d" i;
      rate = p.balance;
      effects =
        [|
          id;
          (fun s ->
            if not (hyper_up p s i) then []
            else begin
              let deficits =
                List.filter_map
                  (fun n ->
                    let d = hyper_q s i - hyper_q s n in
                    if hyper_up p s n && d > 1 then Some (n, float_of_int d) else None)
                  (neighbours p i)
              in
              let total = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 deficits in
              List.map
                (fun (n, d) -> (with_q (with_q s i (-1)) n 1, d /. total))
                deficits
            end);
          id;
        |];
    }
  in
  let transfer i =
    {
      Model.label = Printf.sprintf "transfer_%d" i;
      rate = p.transfer;
      effects =
        [|
          id;
          (fun s ->
            if hyper_up p s i || hyper_q s i = 0 then []
            else begin
              let up_neighbours =
                List.filter (fun n -> hyper_up p s n) (neighbours p i)
              in
              match up_neighbours with
              | [] -> []
              | _ ->
                  let w = 1.0 /. float_of_int (List.length up_neighbours) in
                  List.map (fun n -> (with_q (with_q s i (-1)) n 1, w)) up_neighbours
            end);
          id;
        |];
    }
  in
  Model.make
    ~components:[| pools; hyper; msmq |]
    ~events:
      ([ msmq_arrive; dispatch; repair ]
      @ List.init p.msmq_servers msmq_move
      @ List.init p.msmq_servers msmq_serve
      @ List.init h hyper_serve
      @ List.init h fail
      @ List.init h balance
      @ List.init h transfer)

type built = {
  params : params;
  exploration : Model.exploration;
  md : Mdl_md.Md.t;
  rewards_availability : Decomposed.t;
  rewards_msmq_jobs : Decomposed.t;
  initial : Decomposed.t;
}

let build p =
  let m = model p in
  let exploration = Model.explore_symbolic m in
  let md = Model.md_of exploration in
  let sizes = Array.map Array.length exploration.Model.local_spaces in
  let hyper_states = exploration.Model.local_spaces.(1) in
  let msmq_states = exploration.Model.local_spaces.(2) in
  let rewards_availability =
    Decomposed.of_level ~sizes ~level:2 (fun i ->
        if hyper_down_count p hyper_states.(i) < 2 then 1.0 else 0.0)
  in
  let rewards_msmq_jobs =
    Decomposed.of_level ~sizes ~level:3 (fun i ->
        let s = msmq_states.(i) in
        let total = ref 0 in
        for k = 0 to p.msmq_queues - 1 do
          total := !total + msmq_q p s k
        done;
        float_of_int !total)
  in
  let initial = Decomposed.point ~sizes exploration.Model.initial_tuple in
  { params = p; exploration; md; rewards_availability; rewards_msmq_jobs; initial }

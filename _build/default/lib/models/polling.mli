(** The MSMQ (multi-server multi-queue) polling subsystem in isolation —
    the first half of the paper's tandem system, as a closed queueing
    model (Ajmone Marsan et al., the paper's reference [14]).

    Levels:
    + level 1 — a "thinking" customer population: [customers] jobs that
      each submit work after an exponential think time;
    + level 2 — the polling station: [servers] identical servers cycling
      over [queues] identical queues.

    Used as a standalone example (throughput analysis via ordinary
    lumping) and as a smaller-than-tandem integration test. *)

type params = {
  customers : int;
  servers : int;
  queues : int;
  think : float;  (** per-customer submission rate *)
  walk : float;  (** server transfer rate between queues *)
  service : float;
}

val default : customers:int -> params
(** 2 servers, 3 queues by default. *)

val model : params -> Mdl_san.Model.t
(** @raise Invalid_argument on non-positive counts. *)

type built = {
  params : params;
  exploration : Mdl_san.Model.exploration;
  md : Mdl_md.Md.t;
  rewards_busy_servers : Mdl_core.Decomposed.t;
      (** number of servers currently serving (throughput = service rate
          x this measure) *)
  rewards_queued_jobs : Mdl_core.Decomposed.t;
  initial : Mdl_core.Decomposed.t;
}

val build : params -> built

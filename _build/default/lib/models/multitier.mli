(** A closed multi-tier service system — clients, a replicated front
    tier, a replicated application tier, and a database with a
    fast/degraded mode — giving a {e four-level} matrix diagram (the
    other bundled models have two or three levels).

    Levels:
    + level 1 — [clients] thinking clients;
    + level 2 — [front] identical front-end servers, each a queue;
    + level 3 — [app] identical application servers, each a queue;
    + level 4 — the database: a queue plus a fast/degraded mode bit
      (service is slower while degraded).

    Requests flow client -> front -> app -> database -> client; both
    replicated tiers spread arrivals uniformly, so levels 2 and 3 each
    lump to queue-length multisets. *)

type params = {
  clients : int;
  front : int;
  app : int;
  think : float;
  front_service : float;
  app_service : float;
  db_service : float;
  db_degraded_service : float;
  degrade : float;  (** fast -> degraded *)
  recover : float;  (** degraded -> fast *)
}

val default : clients:int -> params
(** 3 front-end and 3 application servers by default. *)

val model : params -> Mdl_san.Model.t
(** @raise Invalid_argument on non-positive counts. *)

type built = {
  params : params;
  exploration : Mdl_san.Model.exploration;
  md : Mdl_md.Md.t;
  rewards_thinking : Mdl_core.Decomposed.t;
      (** number of thinking clients (throughput = think rate x this) *)
  rewards_db_fast : Mdl_core.Decomposed.t;
      (** 1 while the database is in fast mode *)
  initial : Mdl_core.Decomposed.t;
}

val build : params -> built

lib/models/polling.ml: Array Fun List Mdl_core Mdl_md Mdl_san Printf

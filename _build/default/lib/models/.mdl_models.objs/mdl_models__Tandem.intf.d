lib/models/tandem.mli: Mdl_core Mdl_md Mdl_san

lib/models/kanban.ml: Array List Mdl_core Mdl_md Mdl_san Printf

lib/models/kanban.mli: Mdl_core Mdl_md Mdl_san

lib/models/multitier.mli: Mdl_core Mdl_md Mdl_san

lib/models/polling.mli: Mdl_core Mdl_md Mdl_san

lib/models/workstations.mli: Mdl_core Mdl_md Mdl_san

(** The tandem multi-processor system of Section 5: an MSMQ
    polling-based queueing subsystem and a hypercube of servers with
    failure/repair and load balancing, coupled through shared job pools,
    with a constant population of [J] circulating jobs.

    Levels (matching the paper's MD level assignment):
    + level 1 — the shared places: the hypercube input pool (= MSMQ
      output pool) and the MSMQ input pool (= hypercube output pool);
    + level 2 — the hypercube subsystem: 8 cube-connected servers, each
      with a queue (up to [J] jobs) and an up/down flag; a dispatcher
      feeding servers [A]/[A'] (vertices 0 and 1) with bias toward the
      shorter queue; load balancing between neighbours; failures, a
      single repair facility picking uniformly among failed servers, and
      job evacuation from failed servers (at most [max_down] servers
      down at a time, default 2 — the availability threshold);
    + level 3 — the MSMQ subsystem: [3] identical servers cycling over
      [4] identical queues (poll, serve one job, move on).

    Sources of lumpability, as in the paper: the 3 identical MSMQ
    servers, the [A]/[A'] pair, and the symmetric remaining hypercube
    servers. *)

type params = {
  jobs : int;  (** J, the closed population *)
  max_down : int;  (** simultaneous-failure cap (availability bound) *)
  hyper_dim : int;
      (** hypercube dimension: [2^hyper_dim] servers (paper: 3 -> 8
          servers); smaller values give test-sized instances *)
  msmq_servers : int;  (** paper: 3 *)
  msmq_queues : int;  (** paper: 4 *)
  msmq_walk : float;  (** server transfer rate between queues *)
  msmq_service : float;
  msmq_arrival : float;  (** input pool -> queues *)
  dispatch : float;  (** hypercube input pool -> A/A' *)
  dispatch_bias : float;  (** probability of picking the shorter queue *)
  hyper_service : float;
  fail : float;
  repair : float;
  balance : float;
  transfer : float;  (** evacuation rate from a failed server *)
}

val default : jobs:int -> params
(** Sensible default rates for the given population. *)

val model : params -> Mdl_san.Model.t
(** The three-component SAN-style model.
    @raise Invalid_argument if [jobs < 1] or [max_down < 0]. *)

type built = {
  params : params;
  exploration : Mdl_san.Model.exploration;
  md : Mdl_md.Md.t;
  rewards_availability : Mdl_core.Decomposed.t;
      (** 1 when fewer than [max_down] + 1... precisely: 1 when the
          number of failed hypercube servers is [< 2] (the paper's
          availability criterion), else 0 *)
  rewards_msmq_jobs : Mdl_core.Decomposed.t;
      (** number of jobs in the MSMQ queues *)
  initial : Mdl_core.Decomposed.t;
      (** point distribution on the initial state (all jobs in the MSMQ
          input pool, all servers up) *)
}

val build : params -> built
(** Explore, compile to an MD, and attach the decomposable rewards and
    initial distribution. *)

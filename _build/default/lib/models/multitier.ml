module Model = Mdl_san.Model
module Decomposed = Mdl_core.Decomposed

type params = {
  clients : int;
  front : int;
  app : int;
  think : float;
  front_service : float;
  app_service : float;
  db_service : float;
  db_degraded_service : float;
  degrade : float;
  recover : float;
}

let default ~clients =
  {
    clients;
    front = 3;
    app = 3;
    think = 1.0;
    front_service = 4.0;
    app_service = 3.0;
    db_service = 6.0;
    db_degraded_service = 1.5;
    degrade = 0.05;
    recover = 0.5;
  }

(* Encodings:
   level 1 (clients): [| thinking |]
   level 2 (front):   [| q_1 .. q_F |]
   level 3 (app):     [| q_1 .. q_A |]
   level 4 (db):      [| q; mode |]   (mode 0 = fast, 1 = degraded) *)

let id = Model.identity_effect

let bump s i d =
  let s' = Array.copy s in
  s'.(i) <- s'.(i) + d;
  s'

(* Spread an arriving request uniformly over the servers of a tier. *)
let spread_uniform count cap s =
  let w = 1.0 /. float_of_int count in
  List.filter_map
    (fun i -> if s.(i) < cap then Some (bump s i 1, w) else None)
    (List.init count Fun.id)

let model p =
  if p.clients < 1 || p.front < 1 || p.app < 1 then
    invalid_arg "Multitier.model: counts must be positive";
  let n = p.clients in
  let clients = { Model.name = "clients"; initial = [| n |] } in
  let front = { Model.name = "front"; initial = Array.make p.front 0 } in
  let app = { Model.name = "app"; initial = Array.make p.app 0 } in
  let db = { Model.name = "db"; initial = [| 0; 0 |] } in
  let submit =
    {
      Model.label = "submit";
      rate = p.think;
      effects =
        [|
          (* rate proportional to thinking clients *)
          (fun s -> if s.(0) > 0 then [ ([| s.(0) - 1 |], float_of_int s.(0)) ] else []);
          (fun s -> spread_uniform p.front n s);
          id;
          id;
        |];
    }
  in
  let front_serve i =
    {
      Model.label = Printf.sprintf "front_serve_%d" i;
      rate = p.front_service;
      effects =
        [|
          id;
          (fun s -> if s.(i) > 0 then [ (bump s i (-1), 1.0) ] else []);
          (fun s -> spread_uniform p.app n s);
          id;
        |];
    }
  in
  let app_serve i =
    {
      Model.label = Printf.sprintf "app_serve_%d" i;
      rate = p.app_service;
      effects =
        [|
          id;
          id;
          (fun s -> if s.(i) > 0 then [ (bump s i (-1), 1.0) ] else []);
          (fun s -> if s.(0) < n then [ (bump s 0 1, 1.0) ] else []);
        |];
    }
  in
  let db_serve mode rate =
    {
      Model.label = (if mode = 0 then "db_serve_fast" else "db_serve_degraded");
      rate;
      effects =
        [|
          (fun s -> if s.(0) < n then [ ([| s.(0) + 1 |], 1.0) ] else []);
          id;
          id;
          (fun s -> if s.(0) > 0 && s.(1) = mode then [ (bump s 0 (-1), 1.0) ] else []);
        |];
    }
  in
  let db_mode label rate from_mode to_mode =
    {
      Model.label;
      rate;
      effects =
        [|
          id;
          id;
          id;
          (fun s -> if s.(1) = from_mode then [ ([| s.(0); to_mode |], 1.0) ] else []);
        |];
    }
  in
  Model.make
    ~components:[| clients; front; app; db |]
    ~events:
      ([
         submit;
         db_serve 0 p.db_service;
         db_serve 1 p.db_degraded_service;
         db_mode "degrade" p.degrade 0 1;
         db_mode "recover" p.recover 1 0;
       ]
      @ List.init p.front front_serve
      @ List.init p.app app_serve)

type built = {
  params : params;
  exploration : Model.exploration;
  md : Mdl_md.Md.t;
  rewards_thinking : Decomposed.t;
  rewards_db_fast : Decomposed.t;
  initial : Decomposed.t;
}

let build p =
  let m = model p in
  let exploration = Model.explore_symbolic m in
  let md = Model.md_of exploration in
  let sizes = Array.map Array.length exploration.Model.local_spaces in
  let client_states = exploration.Model.local_spaces.(0) in
  let db_states = exploration.Model.local_spaces.(3) in
  let rewards_thinking =
    Decomposed.of_level ~sizes ~level:1 (fun i -> float_of_int client_states.(i).(0))
  in
  let rewards_db_fast =
    Decomposed.of_level ~sizes ~level:4 (fun i ->
        if db_states.(i).(1) = 0 then 1.0 else 0.0)
  in
  let initial = Decomposed.point ~sizes exploration.Model.initial_tuple in
  { params = p; exploration; md; rewards_thinking; rewards_db_fast; initial }

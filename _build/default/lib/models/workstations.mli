(** A replicated-workstation cluster with a shared spare-part store —
    a small dependability model used by the examples and tests, and the
    vehicle for the {e exact} lumping path (Theorem 4).

    Levels:
    + level 1 — the spare-part store: [0..spares] parts; a restock
      event refills it.
    + level 2 — [n] identical workstations, each [Up], [Degraded] or
      [Down].  Up stations degrade, degraded stations fail; a down
      station consumes a spare part to come back up.

    All workstations being interchangeable, level 2 lumps from [3^n]
    local states to the [C(n+2, 2)] multisets — the kind of replica
    symmetry compositional lumping is built for. *)

type params = {
  stations : int;
  spares : int;
  degrade : float;  (** Up -> Degraded *)
  break : float;  (** Degraded -> Down *)
  crash : float;  (** Up -> Down directly *)
  replace : float;  (** Down -> Up, consuming a spare *)
  restock : float;  (** spare store +1; [0.] disables restocking, making
                        "all stations down, no spares" absorbing (MTTF
                        analyses) *)
}

val default : stations:int -> params

val model : params -> Mdl_san.Model.t
(** @raise Invalid_argument if [stations < 1] or [spares < 0]. *)

type built = {
  params : params;
  exploration : Mdl_san.Model.exploration;
  md : Mdl_md.Md.t;
  rewards_operational : Mdl_core.Decomposed.t;
      (** number of Up workstations *)
  initial : Mdl_core.Decomposed.t;
      (** point distribution: all stations up, store full *)
}

val build : params -> built

module Md = Mdl_md.Md
module Formal_sum = Mdl_md.Formal_sum
module Csr = Mdl_sparse.Csr
module Coo = Mdl_sparse.Coo

type choice = Formal_sums | Expanded_matrices

type t = Sum of Formal_sum.t | Matrix of Csr.t

let compare_matrices ?eps a b =
  let c = compare (Csr.rows a) (Csr.rows b) in
  if c <> 0 then c
  else
    let c = compare (Csr.cols a) (Csr.cols b) in
    if c <> 0 then c
    else begin
      (* Both matrices are in canonical (row-major sorted) form; compare
         entry streams with tolerant values. *)
      let entries m =
        let acc = ref [] in
        Csr.iter (fun i j v -> acc := (i, j, v) :: !acc) m;
        List.rev !acc
      in
      let rec loop ea eb =
        match (ea, eb) with
        | [], [] -> 0
        | [], _ -> -1
        | _, [] -> 1
        | (i1, j1, v1) :: ra, (i2, j2, v2) :: rb ->
            let c = compare (i1, j1) (i2, j2) in
            if c <> 0 then c
            else
              let c = Mdl_util.Floatx.compare_approx ?eps v1 v2 in
              if c <> 0 then c else loop ra rb
      in
      loop (entries a) (entries b)
    end

let compare ?eps a b =
  match (a, b) with
  | Sum sa, Sum sb -> Formal_sum.compare_approx ?eps sa sb
  | Matrix ma, Matrix mb -> compare_matrices ?eps ma mb
  | Sum _, Matrix _ -> -1
  | Matrix _, Sum _ -> 1

type context = {
  md : Md.t;
  flattened : (Md.node_id, Csr.t) Hashtbl.t;
}

let make_context md = { md; flattened = Hashtbl.create 64 }

(* Flatten a node to the real matrix it represents over the suffix
   product space (memoised).  The terminal flattens to the 1x1 [1]. *)
let rec flatten ctx id =
  match Hashtbl.find_opt ctx.flattened id with
  | Some m -> m
  | None ->
      let level = Md.node_level ctx.md id in
      let m =
        if level > Md.levels ctx.md then Csr.identity 1
        else begin
          let n = Md.size ctx.md level in
          let suffix =
            let acc = ref 1 in
            for l = level + 1 to Md.levels ctx.md do
              acc := !acc * Md.size ctx.md l
            done;
            !acc
          in
          let dim = n * suffix in
          let coo = Coo.create ~rows:dim ~cols:dim in
          Md.iter_node_entries ctx.md id (fun r c s ->
              List.iter
                (fun (child, w) ->
                  let block = flatten ctx child in
                  Csr.iter
                    (fun br bc v ->
                      Coo.add coo ((r * suffix) + br) ((c * suffix) + bc) (w *. v))
                    block)
                (Formal_sum.terms s));
          Csr.of_coo coo
        end
      in
      Hashtbl.add ctx.flattened id m;
      m

let expand ctx sum =
  (* sum_{n3} r * R_{n3} as an actual matrix. *)
  match Formal_sum.terms sum with
  | [] -> Csr.of_coo (Coo.create ~rows:0 ~cols:0)
  | (child0, w0) :: rest ->
      List.fold_left
        (fun acc (child, w) -> Csr.add acc (Csr.scale w (flatten ctx child)))
        (Csr.scale w0 (flatten ctx child0))
        rest

let splitter_keys ctx choice mode node c =
  (* Accumulate formal sums per touched state: over columns of the
     splitter for ordinary lumping (row sums R_n(s, C)), over rows for
     exact lumping (column sums R_n(C, s)). *)
  let acc : (int, Formal_sum.t) Hashtbl.t = Hashtbl.create 32 in
  let touch s sum =
    let prev = Option.value ~default:Formal_sum.empty (Hashtbl.find_opt acc s) in
    Hashtbl.replace acc s (Formal_sum.add prev sum)
  in
  (match mode with
  | Mdl_lumping.State_lumping.Ordinary ->
      Array.iter
        (fun col -> List.iter (fun (r, sum) -> touch r sum) (Md.node_col ctx.md node col))
        c
  | Mdl_lumping.State_lumping.Exact ->
      Array.iter
        (fun row -> List.iter (fun (cl, sum) -> touch cl sum) (Md.node_row ctx.md node row))
        c);
  Hashtbl.fold
    (fun s sum l ->
      if Formal_sum.is_empty sum then l
      else
        let key =
          match choice with
          | Formal_sums -> Sum sum
          | Expanded_matrices -> Matrix (expand ctx sum)
        in
        (s, key) :: l)
    acc []

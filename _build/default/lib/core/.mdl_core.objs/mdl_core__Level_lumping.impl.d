lib/core/level_lumping.ml: Array Decomposed List Local_key Mdl_lumping Mdl_md Mdl_partition Mdl_util Printf

lib/core/local_key.ml: Array Hashtbl List Mdl_lumping Mdl_md Mdl_sparse Mdl_util Option

lib/core/md_solve.ml: Array Float Mdl_ctmc Mdl_md Mdl_sparse

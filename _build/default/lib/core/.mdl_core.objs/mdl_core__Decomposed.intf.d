lib/core/decomposed.mli: Mdl_md Mdl_sparse

lib/core/compositional.mli: Decomposed Local_key Mdl_lumping Mdl_md Mdl_partition Mdl_sparse

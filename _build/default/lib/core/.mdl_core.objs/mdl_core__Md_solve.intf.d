lib/core/md_solve.mli: Mdl_ctmc Mdl_md Mdl_sparse

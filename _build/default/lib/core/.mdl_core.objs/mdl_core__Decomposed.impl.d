lib/core/decomposed.ml: Array Mdl_md

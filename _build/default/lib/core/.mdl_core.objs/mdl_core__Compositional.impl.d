lib/core/compositional.ml: Array Decomposed Hashtbl Level_lumping List Logs Mdl_lumping Mdl_md Mdl_partition Mdl_util Option Printf

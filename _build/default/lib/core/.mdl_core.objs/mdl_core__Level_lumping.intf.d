lib/core/level_lumping.mli: Decomposed Local_key Mdl_lumping Mdl_md Mdl_partition

lib/core/local_key.mli: Mdl_lumping Mdl_md

type t = {
  factors : float array array;
  combine : float array -> float;
}

let make ~factors ~combine =
  if Array.length factors = 0 then invalid_arg "Decomposed.make: no levels";
  { factors; combine }

let constant ~sizes v =
  make
    ~factors:(Array.map (fun n -> Array.make n 0.0) sizes)
    ~combine:(fun _ -> v)

let of_level ~sizes ~level f =
  if level < 1 || level > Array.length sizes then
    invalid_arg "Decomposed.of_level: level out of range";
  let factors =
    Array.mapi
      (fun i n -> if i = level - 1 then Array.init n f else Array.make n 0.0)
      sizes
  in
  make ~factors ~combine:(fun values -> values.(level - 1))

let product ~sizes f =
  let factors = Array.mapi (fun i n -> Array.init n (f (i + 1))) sizes in
  make ~factors ~combine:(fun values -> Array.fold_left ( *. ) 1.0 values)

let point ~sizes s0 =
  if Array.length s0 <> Array.length sizes then
    invalid_arg "Decomposed.point: tuple length mismatch";
  product ~sizes (fun l s -> if s = s0.(l - 1) then 1.0 else 0.0)

let levels t = Array.length t.factors

let factor t l s =
  if l < 1 || l > levels t then invalid_arg "Decomposed.factor: level out of range";
  let fl = t.factors.(l - 1) in
  if s < 0 || s >= Array.length fl then
    invalid_arg "Decomposed.factor: substate out of range";
  fl.(s)

let eval t s =
  if Array.length s <> levels t then invalid_arg "Decomposed.eval: tuple length mismatch";
  t.combine (Array.mapi (fun i si -> factor t (i + 1) si) s)

let to_vector t ss =
  let v = Array.make (Mdl_md.Statespace.size ss) 0.0 in
  Mdl_md.Statespace.iter (fun i s -> v.(i) <- eval t s) ss;
  v

let relabel t ~new_sizes ~pick =
  if Array.length new_sizes <> levels t then
    invalid_arg "Decomposed.relabel: level count mismatch";
  let factors =
    Array.mapi
      (fun i n -> Array.init n (fun c -> factor t (i + 1) (pick (i + 1) c)))
      new_sizes
  in
  { factors; combine = t.combine }

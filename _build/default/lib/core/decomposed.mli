(** Decomposable reward vectors and initial distributions.

    Section 3 of the paper restricts rewards (for ordinary lumping) and
    initial probabilities (for exact lumping) to functions built upon
    per-level substate functions:
    [r(s) = g(f_1(s_1), .., f_L(s_L))].  The per-level factors [f_l] are
    what the level-local initial partitions are computed from; [g] is
    arbitrary and never needs to be inspected by the lumping algorithm. *)

type t

val make : factors:float array array -> combine:(float array -> float) -> t
(** [make ~factors ~combine]: [factors.(l-1).(s)] is [f_l(s)];
    [combine] is [g], applied to the per-level factor values of a state.
    @raise Invalid_argument if [factors] is empty. *)

val constant : sizes:int array -> float -> t
(** The constant function [v] on every state. *)

val of_level : sizes:int array -> level:int -> (int -> float) -> t
(** A function depending only on one level's substate:
    [r(s) = f(s_level)] (factor 0 elsewhere, [g] projects).  The common
    case — e.g. "number of jobs in the hypercube input pool". *)

val product : sizes:int array -> (int -> int -> float) -> t
(** [product ~sizes f] is [r(s) = prod_l f l s_l] with [f l] the level-
    [l] factor — the paper's worked example for point initial
    distributions. *)

val point : sizes:int array -> int array -> t
(** [point ~sizes s0] is the indicator of global state [s0] — the
    typical initial distribution [pi_ini(s0) = 1]. *)

val levels : t -> int

val factor : t -> int -> int -> float
(** [factor t l s] is [f_l(s)]. *)

val eval : t -> int array -> float
(** [eval t s = g(f_1(s_1), .., f_L(s_L))]. *)

val to_vector : t -> Mdl_md.Statespace.t -> Mdl_sparse.Vec.t
(** Evaluate on every state of a state space. *)

val relabel : t -> new_sizes:int array -> pick:(int -> int -> int) -> t
(** [relabel t ~new_sizes ~pick] is the decomposed function on relabelled
    level index sets whose level-[l] factor at index [c] is
    [f_l (pick l c)].  Used to carry factors to a lumped diagram via
    class representatives ([pick l c] = representative of class [c] at
    level [l]); valid because the local lumping conditions make factors
    class-constant. *)

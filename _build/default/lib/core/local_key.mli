(** The key functions [K] of Section 4, computed on a single MD node.

    The paper discusses two choices for [K(R_n2, s2, C2)]:

    - {b Formal sums} — [{(r_{n2,n3}(s2, C2), n3) | n3 in N3}]: a set of
      (coefficient, child) pairs, compared structurally.  Cheap (local
      to the node), but only a {e sufficient} condition: two formal sums
      can denote equal matrices without being structurally equal.  This
      is the choice the paper's algorithm uses.

    - {b Expanded matrices} — the actual matrix
      [sum_{n3} r_{n2,n3}(s2, C2) * R_{n3}] of size up to
      [|S_3| x |S_3|]: sufficient {e and} necessary per level, but
      "prohibitively time-consuming" in general.  Implemented here for
      the coarseness/time ablation (experiment P3 of DESIGN.md).

    Keys are row sums over a splitter class for ordinary lumping and
    column sums for exact lumping (Definition 3 / Proposition 1). *)

type choice = Formal_sums | Expanded_matrices

type t
(** A key value: either a formal sum or an expanded matrix. *)

val compare : ?eps:float -> t -> t -> int
(** Total order; [0] = equal as lumping keys. *)

type context
(** Per-diagram memoisation (expanded-matrix flattening cache). *)

val make_context : Mdl_md.Md.t -> context

val splitter_keys :
  context ->
  choice ->
  Mdl_lumping.State_lumping.mode ->
  Mdl_md.Md.node_id ->
  int array ->
  (int * t) list
(** [splitter_keys ctx choice mode node c] lists [(s, K(node, s, C))]
    for every level-local state [s] whose key w.r.t. splitter class [C]
    is nonzero.  Ordinary mode sums the entries of columns [C] per row;
    exact mode sums the entries of rows [C] per column. *)

lib/kron/kronecker.ml: Array List Mdl_md Mdl_sparse Printf

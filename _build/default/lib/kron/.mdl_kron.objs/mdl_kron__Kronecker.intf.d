lib/kron/kronecker.mli: Mdl_md Mdl_sparse

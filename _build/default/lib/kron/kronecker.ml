module Csr = Mdl_sparse.Csr
module Coo = Mdl_sparse.Coo
module Md = Mdl_md.Md
module Formal_sum = Mdl_md.Formal_sum

type event = {
  label : string;
  rate : float;
  locals : Csr.t array;
}

type t = {
  level_sizes : int array;
  event_list : event list;
}

let make ~sizes events =
  if Array.length sizes = 0 then invalid_arg "Kronecker.make: no levels";
  Array.iter (fun n -> if n <= 0 then invalid_arg "Kronecker.make: non-positive level size") sizes;
  List.iter
    (fun e ->
      if e.rate <= 0.0 then
        invalid_arg (Printf.sprintf "Kronecker.make: event %s has non-positive rate" e.label);
      if Array.length e.locals <> Array.length sizes then
        invalid_arg (Printf.sprintf "Kronecker.make: event %s has wrong level count" e.label);
      Array.iteri
        (fun i w ->
          if Csr.rows w <> sizes.(i) || Csr.cols w <> sizes.(i) then
            invalid_arg
              (Printf.sprintf "Kronecker.make: event %s level %d matrix has wrong size"
                 e.label (i + 1));
          Csr.iter
            (fun _ _ v ->
              if v < 0.0 then
                invalid_arg
                  (Printf.sprintf "Kronecker.make: event %s has a negative entry" e.label))
            w)
        e.locals)
    events;
  { level_sizes = Array.copy sizes; event_list = events }

let sizes t = Array.copy t.level_sizes

let events t = t.event_list

let num_events t = List.length t.event_list

let potential_size t = Array.fold_left ( * ) 1 t.level_sizes

let identity_local n = Csr.identity n

let to_md t =
  let md = Md.create ~sizes:t.level_sizes in
  let nlevels = Array.length t.level_sizes in
  (* Build each event's node chain bottom-up (hash-consing shares equal
     suffixes across events); the level-1 matrices of all events combine
     into the single root node, carrying the event rates as
     coefficients. *)
  let suffix_of e =
    let rec build level =
      if level > nlevels then Md.terminal md
      else
        let child = build (level + 1) in
        let entries = ref [] in
        Csr.iter
          (fun r c v -> entries := (r, c, Formal_sum.singleton child v) :: !entries)
          e.locals.(level - 1);
        Md.add_node md ~level !entries
    in
    build 2
  in
  let root_entries = ref [] in
  List.iter
    (fun e ->
      let child = suffix_of e in
      Csr.iter
        (fun r c v ->
          root_entries := (r, c, Formal_sum.singleton child (e.rate *. v)) :: !root_entries)
        e.locals.(0))
    t.event_list;
  let root = Md.add_node md ~level:1 !root_entries in
  Md.set_root md root;
  md

let vec_mul t x =
  let n = potential_size t in
  if Array.length x <> n then invalid_arg "Kronecker.vec_mul: vector size mismatch";
  let nlevels = Array.length t.level_sizes in
  let y = Array.make n 0.0 in
  let scratch_in = Array.make (Array.fold_left max 1 t.level_sizes) 0.0 in
  List.iter
    (fun e ->
      (* z := x * (W_e^1 (X) ... (X) W_e^L) by applying one factor at a
         time (perfect shuffle): factor l acts on the l-th mixed-radix
         digit with stride nright. *)
      let z = ref (Array.copy x) in
      let nright = Array.make nlevels 1 in
      for l = nlevels - 2 downto 0 do
        nright.(l) <- nright.(l + 1) * t.level_sizes.(l + 1)
      done;
      for l = 0 to nlevels - 1 do
        let nl = t.level_sizes.(l) in
        let stride = nright.(l) in
        let w = e.locals.(l) in
        let next = Array.make n 0.0 in
        let nleft = n / (nl * stride) in
        for il = 0 to nleft - 1 do
          for ir = 0 to stride - 1 do
            let base = (il * nl * stride) + ir in
            for d = 0 to nl - 1 do
              scratch_in.(d) <- !z.(base + (d * stride))
            done;
            (* row-vector times W: next digit j accumulates scratch_in(i) * W(i,j) *)
            for i = 0 to nl - 1 do
              let xi = scratch_in.(i) in
              if xi <> 0.0 then
                Csr.iter_row w i (fun j v ->
                    next.(base + (j * stride)) <- next.(base + (j * stride)) +. (xi *. v))
            done
          done
        done;
        z := next
      done;
      Mdl_sparse.Vec.axpy ~alpha:e.rate !z y)
    t.event_list;
  y

let to_csr t =
  let n = potential_size t in
  if n > 1 lsl 22 then invalid_arg "Kronecker.to_csr: potential space too large";
  let coo = Coo.create ~rows:n ~cols:n in
  let nlevels = Array.length t.level_sizes in
  List.iter
    (fun e ->
      (* Enumerate the nonzeros of the Kronecker product of the event's
         local matrices. *)
      let rec expand level row col coeff =
        if level > nlevels then Coo.add coo row col (e.rate *. coeff)
        else
          let nl = t.level_sizes.(level - 1) in
          ignore nl;
          Csr.iter
            (fun r c v ->
              expand (level + 1)
                ((row * t.level_sizes.(level - 1)) + r)
                ((col * t.level_sizes.(level - 1)) + c)
                (coeff *. v))
            e.locals.(level - 1)
      in
      expand 1 0 0 1.0)
    t.event_list;
  Csr.of_coo coo

(** Kronecker descriptors — the stochastic-automata-network style
    representation [R = sum_e lambda_e (W_e^1 (X) .. (X) W_e^L)] that
    matrix diagrams generalise (Section 1/3 of the paper; Plateau-Atif
    SANs).

    Serves three purposes here: (1) the natural compilation target of
    the compositional modelling layer, (2) a baseline symbolic
    representation to benchmark MDs against (shuffle-algorithm vector
    product), and (3) the constructor of MDs — {!to_md} builds the
    levelled diagram, with hash-consing merging events that share
    suffix matrices. *)

type event = {
  label : string;
  rate : float;  (** [lambda_e > 0] *)
  locals : Mdl_sparse.Csr.t array;  (** one [|S_l| x |S_l|] matrix per level *)
}

type t

val make : sizes:int array -> event list -> t
(** @raise Invalid_argument on empty levels, a non-positive rate, or a
    local matrix with the wrong dimensions or a negative entry. *)

val sizes : t -> int array

val events : t -> event list

val num_events : t -> int

val potential_size : t -> int

val identity_local : int -> Mdl_sparse.Csr.t
(** Convenience: the identity matrix, for levels an event does not
    touch. *)

val to_md : t -> Mdl_md.Md.t
(** Build the matrix diagram representing the same matrix: one node
    chain per event, root entries carrying [lambda_e] into the level-1
    coefficients; shared suffixes merge by quasi-reduction. *)

val vec_mul : t -> Mdl_sparse.Vec.t -> Mdl_sparse.Vec.t
(** [vec_mul k x] is the row-vector product [x * R] over the {e
    potential} product space (mixed-radix, level 1 most significant),
    computed with the perfect-shuffle algorithm — [O(sum_l nnz(W_e^l) *
    N / n_l)] per event instead of materialising [R].
    @raise Invalid_argument if [x] is not of the potential size. *)

val to_csr : t -> Mdl_sparse.Csr.t
(** Materialise over the potential space (tests / small models only).
    @raise Invalid_argument if the potential space exceeds 2^22. *)

module Csr = Mdl_sparse.Csr
module Partition = Mdl_partition.Partition
module Floatx = Mdl_util.Floatx

(* R(s, C') for every class C', as a dense array over class ids. *)
let row_class_sums r p s =
  let sums = Array.make (Partition.num_classes p) 0.0 in
  Csr.iter_row r s (fun j v ->
      let c = Partition.class_of p j in
      sums.(c) <- sums.(c) +. v);
  sums

let vector_constant_on_classes ?eps v p =
  let ok = ref true in
  for c = 0 to Partition.num_classes p - 1 do
    let members = Partition.elements p c in
    let v0 = v.(members.(0)) in
    Array.iter (fun s -> if not (Floatx.approx_eq ?eps v0 v.(s)) then ok := false) members
  done;
  !ok

let ordinary ?eps ?rewards r p =
  if Csr.rows r <> Partition.size p then
    invalid_arg "Check.ordinary: partition size mismatch";
  let rewards_ok = match rewards with None -> true | Some rv -> vector_constant_on_classes ?eps rv p in
  rewards_ok
  &&
  let ok = ref true in
  for c = 0 to Partition.num_classes p - 1 do
    let members = Partition.elements p c in
    let reference = row_class_sums r p members.(0) in
    Array.iter
      (fun s ->
        let sums = row_class_sums r p s in
        Array.iteri
          (fun c' v -> if not (Floatx.approx_eq ?eps v reference.(c')) then ok := false)
          sums)
      members
  done;
  !ok

let exact ?eps ?initial r p =
  if Csr.rows r <> Partition.size p then invalid_arg "Check.exact: partition size mismatch";
  let initial_ok =
    match initial with None -> true | Some pi -> vector_constant_on_classes ?eps pi p
  in
  initial_ok
  && vector_constant_on_classes ?eps (Csr.row_sums r) p
  &&
  let rt = Csr.transpose r in
  let ok = ref true in
  for c = 0 to Partition.num_classes p - 1 do
    let members = Partition.elements p c in
    (* R(C', s) over classes C' is the class-sum of column s of R, i.e. of
       row s of the transpose. *)
    let reference = row_class_sums rt p members.(0) in
    Array.iter
      (fun s ->
        let sums = row_class_sums rt p s in
        Array.iteri
          (fun c' v -> if not (Floatx.approx_eq ?eps v reference.(c')) then ok := false)
          sums)
      members
  done;
  !ok

(** Direct (definition-level) lumpability checkers.

    These evaluate the conditions of Theorem 1 literally on a flat rate
    matrix; they are quadratic-ish and exist to validate the partition
    refinement algorithms and the compositional MD lumping in tests. *)

val ordinary :
  ?eps:float ->
  ?rewards:Mdl_sparse.Vec.t ->
  Mdl_sparse.Csr.t ->
  Mdl_partition.Partition.t ->
  bool
(** [ordinary r p] — for all classes [C, C'] and states [s, s_hat] in
    [C]: [R(s, C') = R(s_hat, C')], and, when [rewards] is given,
    [r(s) = r(s_hat)] (Theorem 1(a)). *)

val exact :
  ?eps:float ->
  ?initial:Mdl_sparse.Vec.t ->
  Mdl_sparse.Csr.t ->
  Mdl_partition.Partition.t ->
  bool
(** [exact r p] — for all classes [C, C'] and states [s, s_hat] in [C]:
    [R(C', s) = R(C', s_hat)], [R(s, S) = R(s_hat, S)], and, when
    [initial] is given, [pi_ini(s) = pi_ini(s_hat)] (Theorem 1(b)). *)

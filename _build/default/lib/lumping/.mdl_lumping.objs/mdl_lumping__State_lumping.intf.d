lib/lumping/state_lumping.mli: Mdl_ctmc Mdl_partition Mdl_sparse

lib/lumping/check.mli: Mdl_partition Mdl_sparse

lib/lumping/check.ml: Array Mdl_partition Mdl_sparse Mdl_util

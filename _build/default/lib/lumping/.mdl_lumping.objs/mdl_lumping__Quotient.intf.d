lib/lumping/quotient.mli: Mdl_ctmc Mdl_partition Mdl_sparse State_lumping

lib/lumping/quotient.ml: Array Mdl_ctmc Mdl_partition Mdl_sparse State_lumping

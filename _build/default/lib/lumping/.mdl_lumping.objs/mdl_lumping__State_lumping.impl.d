lib/lumping/state_lumping.ml: Array Hashtbl Mdl_ctmc Mdl_partition Mdl_sparse Mdl_util Option

(** Quotient (lumped) chain construction — Theorem 2 and the tail of
    Figure 1's [Lump] procedure. *)

val rates :
  State_lumping.mode ->
  Mdl_sparse.Csr.t ->
  Mdl_partition.Partition.t ->
  Mdl_sparse.Csr.t
(** [rates mode r p] is the lumped rate matrix [R~]:
    ordinary — [R~(i~, j~) = R(s, C_j)] for an arbitrary [s] in [C_i];
    exact    — [R~(i~, j~) = R(C_i, C_j) / |C_i|].

    For exact lumping the paper's Theorem 2 matrix [R(C_i, s)] (arbitrary
    [s] in [C_j]) is not itself a rate matrix: its row sums are not the
    exit rates of anything.  We build the diagonally-similar aggregated
    form [R(C_i, C_j) / |C_i|] = [R(C_i, s) * |C_j| / |C_i|] instead
    (Buchholz 1994, which Theorem 2 cites): under exact lumpability it is
    a genuine CTMC rate matrix, the aggregated probability vector evolves
    exactly under it, and Theorem 2's reward/initial formulas preserve
    all measures.  The two matrices carry the same information (similarity
    by [diag |C_i|]).  The partition is trusted (checked by callers and
    tests, not here). *)

val rewards :
  Mdl_sparse.Vec.t -> Mdl_partition.Partition.t -> Mdl_sparse.Vec.t
(** [r~(i~) = r(C_i) / |C_i|] (class average; equals the common value
    under ordinary lumpability). *)

val initial :
  Mdl_sparse.Vec.t -> Mdl_partition.Partition.t -> Mdl_sparse.Vec.t
(** [pi~_ini(i~) = pi_ini(C_i)] (class sum). *)

val mrp : State_lumping.mode -> Mdl_ctmc.Mrp.t -> Mdl_partition.Partition.t -> Mdl_ctmc.Mrp.t
(** Lumped MRP per Theorem 2. *)

val lift :
  Mdl_sparse.Vec.t -> Mdl_partition.Partition.t -> Mdl_sparse.Vec.t
(** [lift v~ p] expands a class-indexed vector to a state-indexed one by
    assigning each state its class's value divided by the class size —
    the inverse of probability aggregation for exactly lumped chains
    (equiprobable states within a class). *)

val aggregate :
  Mdl_sparse.Vec.t -> Mdl_partition.Partition.t -> Mdl_sparse.Vec.t
(** [aggregate v p] sums a state-indexed vector per class (probability
    aggregation for ordinarily lumped chains). *)

(** The generic partition-refinement engine of Figure 1 (procedure
    [CompLumping]), parameterised by the key function [K].

    The engine refines an initial partition until every class is
    key-constant with respect to every class used as a splitter.  The
    key abstraction is exactly the paper's [K(R, s, C)] — "by choosing K
    appropriately, we can customize the algorithm to compute partitions
    that satisfy a set of desired conditions": flat ordinary lumping
    uses [R(s, C)], flat exact lumping uses [R(C, s)], and the MD-local
    variants use formal sums of [(coefficient, node)] pairs.

    Rather than computing [K] for every state of [S] (Figure 1 line 5),
    the engine asks only for the states with a key different from the
    zero key — for row/column-sum keys those are the (predecessor /
    successor) states of the splitter — and groups the remaining states
    of each class implicitly, which is how the [O(m log n)] behaviour of
    the underlying state-level algorithm is obtained. *)

type 'k spec = {
  size : int;  (** number of states *)
  key_compare : 'k -> 'k -> int;
      (** total order on keys; [0] means equal (may be tolerant for
          floats).  States of a class are grouped by runs of equal
          keys. *)
  splitter_keys : int array -> (int * 'k) list;
      (** [splitter_keys c] lists [(s, K(s, C))] for every state [s]
          whose key w.r.t. splitter class [C] (given by its elements)
          is different from the zero key.  States not listed are treated
          as sharing the common zero key.  Must not list a state
          twice. *)
}

val comp_lumping : 'k spec -> initial:Partition.t -> Partition.t
(** [comp_lumping spec ~initial] returns the coarsest refinement of
    [initial] that is stable under [spec.splitter_keys] splitting (the
    input partition is not mutated).  Termination: a class is re-used as
    a splitter only when freshly created by a split, and partitions only
    ever get finer. @raise Invalid_argument if [initial] is not over
    [spec.size] states. *)

val is_stable : 'k spec -> Partition.t -> bool
(** [is_stable spec p] checks directly that every class of [p] is
    key-constant w.r.t. every class of [p] as splitter — the
    post-condition of {!comp_lumping}, used by tests. *)

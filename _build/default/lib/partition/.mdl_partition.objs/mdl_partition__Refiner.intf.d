lib/partition/refiner.mli: Partition

lib/partition/refiner.ml: Array Hashtbl List Partition Queue

lib/partition/partition.mli: Format

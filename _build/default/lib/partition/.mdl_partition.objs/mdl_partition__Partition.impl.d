lib/partition/partition.ml: Array Format Fun Hashtbl List Mdl_util Printf String

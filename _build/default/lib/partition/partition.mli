(** Refinable partitions of [{0, .., n-1}].

    The central data structure of all lumping algorithms in this
    repository: a partition of a state space into equivalence classes,
    supporting class lookup in O(1) and in-place splitting of a class
    into groups.  Class ids are dense integers [0 .. num_classes-1];
    splitting reuses the split class's id for the first group and
    allocates fresh ids for the rest, so existing ids never dangle
    (they may shrink). *)

type t

val trivial : int -> t
(** [trivial n] is the one-class partition of [{0..n-1}] ([n >= 0]);
    with [n = 0] the partition has no class. *)

val discrete : int -> t
(** [discrete n] is the all-singletons partition. *)

val of_class_assignment : int array -> t
(** [of_class_assignment a] builds the partition where element [i]
    belongs to class [a.(i)].  Class labels may be arbitrary ints; they
    are renumbered densely in order of first appearance.
    @raise Invalid_argument on negative labels. *)

val group_by : int -> (int -> 'k) -> ('k -> 'k -> int) -> t
(** [group_by n key cmp] partitions [{0..n-1}] into classes of equal
    [key] (equality judged by [cmp] returning 0), the coarsest partition
    for which [key] is class-constant.  Used to build the initial
    partitions [P_ini] of the lumping algorithms. *)

val size : t -> int
(** Number of elements [n]. *)

val num_classes : t -> int

val class_of : t -> int -> int
(** [class_of t x] is the id of the class containing element [x]. *)

val elements : t -> int -> int array
(** [elements t c] is a fresh array of the members of class [c] (in no
    particular order). @raise Invalid_argument for an invalid id. *)

val class_size : t -> int -> int

val representative : t -> int -> int
(** An arbitrary (but stable between splits) member of class [c]. *)

val split : t -> int -> int array list -> int list
(** [split t c groups] splits class [c] into the given groups, which
    must be a disjoint cover of [elements t c] with no empty group.
    Returns the class ids of the groups, in order ([c] first when more
    than one group; if [groups] has a single group this is a no-op
    returning [\[c\]]).
    @raise Invalid_argument if the groups do not exactly cover [c]. *)

val refine_class_by : t -> int -> (int -> 'k) -> ('k -> 'k -> int) -> int list
(** [refine_class_by t c key cmp] splits class [c] into maximal groups
    of [cmp]-equal keys; convenience wrapper over {!split}. *)

val is_refinement_of : t -> t -> bool
(** [is_refinement_of fine coarse] — every class of [fine] is contained
    in a class of [coarse]. *)

val equal : t -> t -> bool
(** Same classes (regardless of numbering). *)

val to_class_assignment : t -> int array

val classes : t -> int array array
(** All classes, indexed by class id (fresh arrays). *)

val pp : Format.formatter -> t -> unit

module Dynarray = Mdl_util.Dynarray

type t = {
  class_of : int array;
  blocks : int array Dynarray.t; (* class id -> members *)
}

let size t = Array.length t.class_of

let num_classes t = Dynarray.length t.blocks

let check_class t c fn =
  if c < 0 || c >= num_classes t then
    invalid_arg (Printf.sprintf "Partition.%s: invalid class id %d" fn c)

let class_of t x =
  if x < 0 || x >= size t then invalid_arg "Partition.class_of: element out of bounds";
  t.class_of.(x)

let elements t c =
  check_class t c "elements";
  Array.copy (Dynarray.get t.blocks c)

let class_size t c =
  check_class t c "class_size";
  Array.length (Dynarray.get t.blocks c)

let representative t c =
  check_class t c "representative";
  (Dynarray.get t.blocks c).(0)

let trivial n =
  if n < 0 then invalid_arg "Partition.trivial: negative size";
  let blocks = Dynarray.create () in
  if n > 0 then Dynarray.push blocks (Array.init n Fun.id);
  { class_of = Array.make n 0; blocks }

let discrete n =
  if n < 0 then invalid_arg "Partition.discrete: negative size";
  let blocks = Dynarray.create () in
  for i = 0 to n - 1 do
    Dynarray.push blocks [| i |]
  done;
  { class_of = Array.init n Fun.id; blocks }

let of_class_assignment a =
  let n = Array.length a in
  let renumber = Hashtbl.create 16 in
  let class_of = Array.make n 0 in
  let members = Dynarray.create () in
  Array.iteri
    (fun i label ->
      if label < 0 then invalid_arg "Partition.of_class_assignment: negative label";
      let c =
        match Hashtbl.find_opt renumber label with
        | Some c -> c
        | None ->
            let c = Dynarray.length members in
            Hashtbl.add renumber label c;
            Dynarray.push members (Dynarray.create ());
            c
      in
      class_of.(i) <- c;
      Dynarray.push (Dynarray.get members c) i)
    a;
  let blocks = Dynarray.create () in
  Dynarray.iter (fun m -> Dynarray.push blocks (Dynarray.to_array m)) members;
  { class_of; blocks }

(* Group elements of [items] into runs of cmp-equal keys.  Returns the
   groups in key order; within a group the original order is kept (sort
   is stable on the decorated index). *)
let group_elements items key cmp =
  let decorated = Array.map (fun x -> (key x, x)) items in
  let by_key (k1, x1) (k2, x2) =
    let c = cmp k1 k2 in
    if c <> 0 then c else compare x1 x2
  in
  Array.sort by_key decorated;
  let groups = Dynarray.create () in
  let current = Dynarray.create () in
  Array.iteri
    (fun idx (k, x) ->
      if idx > 0 then begin
        let prev_k, _ = decorated.(idx - 1) in
        if cmp prev_k k <> 0 then begin
          Dynarray.push groups (Dynarray.to_array current);
          Dynarray.clear current
        end
      end;
      Dynarray.push current x)
    decorated;
  if not (Dynarray.is_empty current) then Dynarray.push groups (Dynarray.to_array current);
  Dynarray.to_list groups

let group_by n key cmp =
  if n < 0 then invalid_arg "Partition.group_by: negative size";
  let groups = group_elements (Array.init n Fun.id) key cmp in
  let class_of = Array.make n 0 in
  let blocks = Dynarray.create () in
  List.iter
    (fun g ->
      let c = Dynarray.length blocks in
      Array.iter (fun x -> class_of.(x) <- c) g;
      Dynarray.push blocks g)
    groups;
  { class_of; blocks }

let split t c groups =
  check_class t c "split";
  let old = Dynarray.get t.blocks c in
  let total = List.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  if total <> Array.length old then
    invalid_arg "Partition.split: groups do not cover the class";
  List.iter
    (fun g ->
      if Array.length g = 0 then invalid_arg "Partition.split: empty group";
      Array.iter
        (fun x ->
          if x < 0 || x >= size t || t.class_of.(x) <> c then
            invalid_arg "Partition.split: element not in class")
        g)
    groups;
  match groups with
  | [] -> invalid_arg "Partition.split: no groups"
  | [ _ ] -> [ c ]
  | first :: rest ->
      (* Disjointness follows from the count check plus membership: each
         element belongs to class c and the group sizes sum to |c|, so a
         duplicate would force a missing element.  Guard against
         duplicates inside a single group explicitly. *)
      let seen = Hashtbl.create (Array.length old) in
      List.iter
        (Array.iter (fun x ->
             if Hashtbl.mem seen x then invalid_arg "Partition.split: duplicate element";
             Hashtbl.add seen x ()))
        groups;
      Dynarray.set t.blocks c first;
      let ids =
        List.map
          (fun g ->
            let id = Dynarray.length t.blocks in
            Dynarray.push t.blocks g;
            Array.iter (fun x -> t.class_of.(x) <- id) g;
            id)
          rest
      in
      c :: ids

let refine_class_by t c key cmp =
  check_class t c "refine_class_by";
  let groups = group_elements (Dynarray.get t.blocks c) key cmp in
  split t c groups

let to_class_assignment t = Array.copy t.class_of

let classes t = Array.init (num_classes t) (fun c -> Array.copy (Dynarray.get t.blocks c))

let canonical_assignment t =
  (* Renumber classes by first appearance so equal partitions get equal
     assignments. *)
  let a = t.class_of in
  let renumber = Hashtbl.create 16 in
  Array.map
    (fun c ->
      match Hashtbl.find_opt renumber c with
      | Some c' -> c'
      | None ->
          let c' = Hashtbl.length renumber in
          Hashtbl.add renumber c c';
          c')
    a

let equal t1 t2 =
  size t1 = size t2 && canonical_assignment t1 = canonical_assignment t2

let is_refinement_of fine coarse =
  size fine = size coarse
  &&
  (* Each fine class must be contained in one coarse class. *)
  let ok = ref true in
  for c = 0 to num_classes fine - 1 do
    let members = Dynarray.get fine.blocks c in
    let target = coarse.class_of.(members.(0)) in
    Array.iter (fun x -> if coarse.class_of.(x) <> target then ok := false) members
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "{@[";
  for c = 0 to num_classes t - 1 do
    if c > 0 then Format.fprintf ppf ",@ ";
    Format.fprintf ppf "{%s}"
      (String.concat " " (List.map string_of_int (Array.to_list (Dynarray.get t.blocks c))))
  done;
  Format.fprintf ppf "@]}"

lib/util/dynarray.mli:

lib/util/hashx.ml: Array Hashtbl Int64 List

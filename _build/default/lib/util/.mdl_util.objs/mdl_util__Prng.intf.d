lib/util/prng.mli:

lib/util/dynarray.ml: Array Printf

lib/util/hashx.mli:

lib/util/timer.mli:

lib/util/floatx.mli:

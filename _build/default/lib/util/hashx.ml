let combine seed h =
  (* The boost::hash_combine mixing constant, truncated to OCaml's native
     int width; good avalanche behaviour for our structural hashes. *)
  seed lxor (h + 0x9e3779b9 + (seed lsl 6) + (seed lsr 2))

let combine_list seed hs = List.fold_left combine seed hs

let float f = Hashtbl.hash (Int64.bits_of_float f)

let int_array a =
  let h = ref (Array.length a) in
  for i = 0 to Array.length a - 1 do
    h := combine !h a.(i)
  done;
  !h

(** Deterministic splittable pseudo-random number generator
    (SplitMix64).

    Workload generators and property-based tests need reproducible
    randomness that is independent of the global [Random] state; every
    generator receives its own [t]. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

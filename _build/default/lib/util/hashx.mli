(** Hash-combination helpers for structural hash-consing. *)

val combine : int -> int -> int
(** [combine seed h] mixes [h] into [seed] (boost-style combiner). *)

val combine_list : int -> int list -> int

val float : float -> int
(** Hash of the bit pattern of a float (distinguishes [-0.] from [0.];
    stable across runs). *)

val int_array : int array -> int

(** Tolerant floating-point comparison helpers.

    Partition refinement and lumpability checks compare sums of rates
    computed along different association orders; all such comparisons go
    through this module so the tolerance policy lives in one place. *)

val default_eps : float
(** Absolute/relative tolerance used when none is supplied ([1e-9]). *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] is true when [|a - b| <= eps * max 1 (|a|, |b|)],
    i.e. absolute tolerance near zero, relative away from it. *)

val compare_approx : ?eps:float -> float -> float -> int
(** Three-way comparison compatible with {!approx_eq}: returns [0] when
    the two floats are approximately equal, and the sign of [a -. b]
    otherwise.  Not a total order in the mathematical sense, but stable
    enough to group keys whose components were computed identically. *)

val sum_kahan : float array -> float
(** Compensated (Kahan) summation, used where many small rates are
    accumulated. *)

(** Wall-clock timing used by the benchmark harness and the CLI
    reporters. *)

type t

val start : unit -> t
(** [start ()] is a timer started now. *)

val elapsed_s : t -> float
(** Seconds elapsed since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed
    wall-clock seconds. *)

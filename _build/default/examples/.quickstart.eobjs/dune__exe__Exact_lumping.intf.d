examples/exact_lumping.mli:

examples/quickstart.ml: Array Float List Mdl_core Mdl_ctmc Mdl_md Mdl_partition Mdl_san Printf

examples/mttf.mli:

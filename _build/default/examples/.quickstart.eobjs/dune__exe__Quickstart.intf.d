examples/quickstart.mli:

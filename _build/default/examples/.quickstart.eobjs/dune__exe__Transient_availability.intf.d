examples/transient_availability.mli:

examples/sensitivity.ml: Array List Mdl_core Mdl_ctmc Mdl_md Mdl_models Mdl_san Mdl_util Printf Sys

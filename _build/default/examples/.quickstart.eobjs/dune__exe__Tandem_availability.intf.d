examples/tandem_availability.mli:

examples/polling_throughput.mli:

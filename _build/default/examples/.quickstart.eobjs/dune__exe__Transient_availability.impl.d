examples/transient_availability.ml: Array List Mdl_core Mdl_ctmc Mdl_md Mdl_models Mdl_san Printf Sys

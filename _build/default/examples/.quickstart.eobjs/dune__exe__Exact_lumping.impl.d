examples/exact_lumping.ml: Array Float Mdl_core Mdl_ctmc Mdl_md Mdl_models Mdl_san Mdl_sparse Printf Sys

examples/sensitivity.mli:

examples/polling_throughput.ml: Array Float Mdl_core Mdl_ctmc Mdl_md Mdl_models Mdl_san Printf Sys

examples/tandem_availability.ml: Array Mdl_core Mdl_ctmc Mdl_md Mdl_models Mdl_san Mdl_util Printf String Sys

(* Transient availability of the tandem system's hypercube subsystem,
   computed entirely on the compositionally lumped matrix diagram: the
   probability that fewer than two servers are down, as a function of
   time, starting from the all-up initial state.

   This is the kind of dependability curve the paper's introduction
   motivates: the full chain at J=1 has ~40k states, the lumped chain
   under 1k, and by Theorem 3 the curve is identical.

   Run with: dune exec examples/transient_availability.exe [-- J] *)

module Model = Mdl_san.Model
module Statespace = Mdl_md.Statespace
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver
module Tandem = Mdl_models.Tandem

let () =
  let jobs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1 in
  let b = Tandem.build (Tandem.default ~jobs) in
  let ss = b.Tandem.exploration.Model.statespace in
  let result =
    Compositional.lump Ordinary b.Tandem.md
      ~rewards:[ b.Tandem.rewards_availability ]
      ~initial:b.Tandem.initial
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  assert (Compositional.is_closed result ss);
  Printf.printf "tandem J=%d: %d states lumped to %d\n" jobs (Statespace.size ss)
    (Statespace.size lumped_ss);

  let pi0 =
    Compositional.aggregate_vector result ss lumped_ss
      (Decomposed.to_vector b.Tandem.initial ss)
  in
  let avail_reward =
    Decomposed.to_vector
      (Compositional.lumped_rewards result b.Tandem.rewards_availability)
      lumped_ss
  in
  Printf.printf "%8s  %s\n" "t" "availability";
  List.iter
    (fun t ->
      let pi_t = Md_solve.transient ~t result.Compositional.lumped lumped_ss pi0 in
      Printf.printf "%8.2f  %.8f\n" t (Solver.expected_reward pi_t avail_reward))
    [ 0.0; 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0 ];

  (* Cross-check the tail of the curve against the stationary value. *)
  let pi_inf, _ =
    Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000 result.Compositional.lumped
      lumped_ss
  in
  Printf.printf "%8s  %.8f (steady state)\n" "inf"
    (Solver.expected_reward pi_inf avail_reward)

(* Sensitivity analysis: steady-state availability of the tandem system
   as a function of the hypercube failure rate.

   This is the workflow the paper's state-space reduction pays off in:
   a parameter sweep re-solves the chain many times, and each solve runs
   on the ~40x smaller lumped matrix diagram.  The lumping itself is
   recomputed per parameter value (rates change the MD coefficients) but
   remains negligible next to solution time.

   Run with: dune exec examples/sensitivity.exe [-- J] *)

module Model = Mdl_san.Model
module Statespace = Mdl_md.Statespace
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver
module Tandem = Mdl_models.Tandem

let () =
  let jobs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1 in
  Printf.printf "%-12s %-14s %-12s %s\n" "fail rate" "availability" "states" "solve";
  List.iter
    (fun fail ->
      let p = { (Tandem.default ~jobs) with Tandem.fail } in
      let b = Tandem.build p in
      let ss = b.Tandem.exploration.Model.statespace in
      let result =
        Compositional.lump Ordinary b.Tandem.md
          ~rewards:[ b.Tandem.rewards_availability ]
          ~initial:b.Tandem.initial
      in
      let lumped_ss = Compositional.lump_statespace result ss in
      assert (Compositional.is_closed result ss);
      let (pi, stats), solve_s =
        Mdl_util.Timer.time (fun () ->
            Md_solve.steady_state ~tol:1e-11 ~max_iter:500_000
              result.Compositional.lumped lumped_ss)
      in
      let availability =
        Solver.expected_reward pi
          (Decomposed.to_vector
             (Compositional.lumped_rewards result b.Tandem.rewards_availability)
             lumped_ss)
      in
      Printf.printf "%-12g %-14.8f %6d->%-5d %.2f s (%d it)\n" fail availability
        (Statespace.size ss) (Statespace.size lumped_ss) solve_s
        stats.Solver.iterations)
    [ 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5 ]

(* Throughput analysis of the MSMQ polling station (the paper's
   reference [14], the first half of the tandem system), demonstrating
   that ordinary compositional lumping preserves performance measures
   while shrinking the chain the solver sees.

   Run with: dune exec examples/polling_throughput.exe [-- customers] *)

module Model = Mdl_san.Model
module Statespace = Mdl_md.Statespace
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver
module Polling = Mdl_models.Polling

let () =
  let customers = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let p = Polling.default ~customers in
  Printf.printf "MSMQ polling station: %d customers, %d servers, %d queues\n%!" customers
    p.Polling.servers p.Polling.queues;
  let b = Polling.build p in
  let ss = b.Polling.exploration.Model.statespace in

  let result =
    Compositional.lump Ordinary b.Polling.md
      ~rewards:[ b.Polling.rewards_busy_servers; b.Polling.rewards_queued_jobs ]
      ~initial:b.Polling.initial
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  Printf.printf "states: %d -> %d (%.1fx)\n%!" (Statespace.size ss)
    (Statespace.size lumped_ss)
    (float_of_int (Statespace.size ss) /. float_of_int (Statespace.size lumped_ss));
  assert (Compositional.is_closed result ss);

  (* Solve both and compare: the lumped solution must give the same
     measures with fewer unknowns. *)
  let pi_flat, st_flat = Md_solve.steady_state ~tol:1e-12 b.Polling.md ss in
  let pi_lump, st_lump =
    Md_solve.steady_state ~tol:1e-12 result.Compositional.lumped lumped_ss
  in
  Printf.printf "solver iterations: flat %d, lumped %d\n" st_flat.Solver.iterations
    st_lump.Solver.iterations;

  let measure name reward =
    let flat = Solver.expected_reward pi_flat (Decomposed.to_vector reward ss) in
    let lumped =
      Solver.expected_reward pi_lump
        (Decomposed.to_vector (Compositional.lumped_rewards result reward) lumped_ss)
    in
    Printf.printf "%-28s flat %.9f   lumped %.9f\n" name flat lumped;
    assert (Float.abs (flat -. lumped) < 1e-8)
  in
  measure "mean busy servers" b.Polling.rewards_busy_servers;
  measure "mean queued jobs" b.Polling.rewards_queued_jobs;
  let busy_flat = Solver.expected_reward pi_flat (Decomposed.to_vector b.Polling.rewards_busy_servers ss) in
  Printf.printf "throughput (service rate x busy servers): %.6f jobs/s\n"
    (p.Polling.service *. busy_flat);
  print_endline "polling_throughput OK"

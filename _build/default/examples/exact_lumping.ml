(* Exact lumping (Theorem 4) on the replicated-workstation cluster:
   starting from a class-uniform initial distribution, the transient
   distribution of the original chain is recovered from the lumped
   chain by spreading each class's probability uniformly over its
   members ("lift").

   Run with: dune exec examples/exact_lumping.exe [-- stations] *)

module Model = Mdl_san.Model
module Vec = Mdl_sparse.Vec
module Statespace = Mdl_md.Statespace
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver
module Workstations = Mdl_models.Workstations

let () =
  let stations = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let b = Workstations.build (Workstations.default ~stations) in
  let ss = b.Workstations.exploration.Model.statespace in
  Printf.printf "workstation cluster: %d stations, %d reachable states\n%!" stations
    (Statespace.size ss);

  (* Exact lumping keyed on the (decomposable) initial distribution:
     all stations up, full store - a state fixed by every permutation,
     so its class is a singleton and the distribution is class-uniform. *)
  let result =
    Compositional.lump Exact b.Workstations.md
      ~rewards:[ b.Workstations.rewards_operational ]
      ~initial:b.Workstations.initial
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  Printf.printf "exact lumping: %d -> %d states\n%!" (Statespace.size ss)
    (Statespace.size lumped_ss);
  assert (Compositional.is_closed result ss);

  (* Transient analysis on both chains. *)
  let t_horizon = 0.8 in
  let ctmc_flat = Md_solve.ctmc_of b.Workstations.md ss in
  let ctmc_lumped = Md_solve.ctmc_of result.Compositional.lumped lumped_ss in
  let pi0_flat = Decomposed.to_vector b.Workstations.initial ss in
  let pi0_lumped = Compositional.aggregate_vector result ss lumped_ss pi0_flat in
  let pi_t_flat = Solver.transient ~t:t_horizon ctmc_flat pi0_flat in
  let pi_t_lumped = Solver.transient ~t:t_horizon ctmc_lumped pi0_lumped in

  (* Lift: each lumped state's probability divided uniformly over the
     members of its class - exactness makes this the true transient
     distribution of the full chain. *)
  let counts = Array.make (Statespace.size lumped_ss) 0 in
  Statespace.iter
    (fun _ s ->
      match Statespace.index lumped_ss (Compositional.class_tuple result s) with
      | Some c -> counts.(c) <- counts.(c) + 1
      | None -> assert false)
    ss;
  let lifted =
    Array.init (Statespace.size ss) (fun i ->
        match
          Statespace.index lumped_ss
            (Compositional.class_tuple result (Statespace.tuple ss i))
        with
        | Some c -> pi_t_lumped.(c) /. float_of_int counts.(c)
        | None -> assert false)
  in
  let err = Vec.diff_inf lifted pi_t_flat in
  Printf.printf "t = %.2f: max |lifted - true| = %.2e\n" t_horizon err;
  assert (err < 1e-9);

  (* The operational-stations measure agrees too. *)
  let r_flat =
    Solver.expected_reward pi_t_flat
      (Decomposed.to_vector b.Workstations.rewards_operational ss)
  in
  let r_lift =
    Solver.expected_reward lifted
      (Decomposed.to_vector b.Workstations.rewards_operational ss)
  in
  Printf.printf "expected operational stations at t: flat %.9f, via lump %.9f\n" r_flat
    r_lift;
  assert (Float.abs (r_flat -. r_lift) < 1e-9);
  print_endline "exact_lumping OK"

(* Dependability analysis of the paper's tandem multi-processor system
   (Section 5): steady-state availability of the hypercube subsystem
   ("unavailable when two or more servers are down"), computed on the
   compositionally lumped matrix diagram.

   Run with: dune exec examples/tandem_availability.exe [-- J]
   (default J = 1; J = 2 takes ~30 s because of exploration). *)

module Model = Mdl_san.Model
module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver
module Tandem = Mdl_models.Tandem

let () =
  let jobs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1 in
  Printf.printf "tandem system, J = %d jobs\n%!" jobs;

  let b, gen_time = Mdl_util.Timer.time (fun () -> Tandem.build (Tandem.default ~jobs)) in
  let ss = b.Tandem.exploration.Model.statespace in
  let counts, _ = Md.stats b.Tandem.md in
  Printf.printf "state space: %d states; MD nodes per level: %s; generation %.2f s\n%!"
    (Statespace.size ss)
    (String.concat " " (Array.to_list (Array.map string_of_int counts)))
    gen_time;

  (* Both measures are protected: every reward listed here stays
     computable on the lumped chain. *)
  let result, lump_time =
    Mdl_util.Timer.time (fun () ->
        Compositional.lump Ordinary b.Tandem.md
          ~rewards:[ b.Tandem.rewards_availability; b.Tandem.rewards_msmq_jobs ]
          ~initial:b.Tandem.initial)
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  Printf.printf "lumped: %d states (%.1fx reduction); lump time %.3f s\n%!"
    (Statespace.size lumped_ss)
    (float_of_int (Statespace.size ss) /. float_of_int (Statespace.size lumped_ss))
    lump_time;
  if not (Compositional.is_closed result ss) then begin
    prerr_endline "reachable set not closed under the equivalence - refusing to solve";
    exit 1
  end;

  let (pi, stats), solve_time =
    Mdl_util.Timer.time (fun () ->
        Md_solve.steady_state ~tol:1e-12 ~max_iter:500_000 result.Compositional.lumped
          lumped_ss)
  in
  Printf.printf "lumped solve: %d iterations, %.2f s (converged: %b)\n%!"
    stats.Solver.iterations solve_time stats.Solver.converged;

  let availability =
    Solver.expected_reward pi
      (Decomposed.to_vector
         (Compositional.lumped_rewards result b.Tandem.rewards_availability)
         lumped_ss)
  in
  Printf.printf "steady-state availability (fewer than 2 hypercube servers down): %.8f\n"
    availability;

  let msmq_jobs =
    Solver.expected_reward pi
      (Decomposed.to_vector
         (Compositional.lumped_rewards result b.Tandem.rewards_msmq_jobs)
         lumped_ss)
  in
  Printf.printf "expected jobs in MSMQ queues: %.6f\n" msmq_jobs

(* Quickstart: the full pipeline on a small model.

   1. describe a compositional model (components + events);
   2. explore it and compile it to a matrix diagram;
   3. lump the diagram compositionally (the paper's algorithm);
   4. solve the lumped chain and compute a measure;
   5. cross-check against the flat, unlumped solution.

   Run with: dune exec examples/quickstart.exe *)

module Model = Mdl_san.Model
module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver

let () =
  (* A fault-tolerant pair-of-triples: a controller (level 1) toggles a
     mode; three identical workers (level 2) each cycle
     idle -> busy -> idle, but can only pick up work when the
     controller is in mode 1. *)
  let controller = { Model.name = "controller"; initial = [| 0 |] } in
  let workers = { Model.name = "workers"; initial = [| 0; 0; 0 |] } in
  let toggle =
    {
      Model.label = "toggle";
      rate = 0.5;
      effects = [| (fun s -> [ ([| 1 - s.(0) |], 1.0) ]); Model.identity_effect |];
    }
  in
  let pick_up i =
    {
      Model.label = Printf.sprintf "pick_up_%d" i;
      rate = 2.0;
      effects =
        [|
          (fun s -> if s.(0) = 1 then [ (s, 1.0) ] else []);
          (fun s ->
            if s.(i) = 0 then begin
              let s' = Array.copy s in
              s'.(i) <- 1;
              [ (s', 1.0) ]
            end
            else []);
        |];
    }
  in
  let finish i =
    {
      Model.label = Printf.sprintf "finish_%d" i;
      rate = 3.0;
      effects =
        [|
          Model.identity_effect;
          (fun s ->
            if s.(i) = 1 then begin
              let s' = Array.copy s in
              s'.(i) <- 0;
              [ (s', 1.0) ]
            end
            else []);
        |];
    }
  in
  let model =
    Model.make
      ~components:[| controller; workers |]
      ~events:([ toggle ] @ List.init 3 pick_up @ List.init 3 finish)
  in

  (* Explore and build the MD. *)
  let exp = Model.explore model in
  let md = Model.md_of exp in
  let ss = exp.Model.statespace in
  Printf.printf "reachable states: %d\n" (Statespace.size ss);
  Printf.printf "MD: %d levels, %d live nodes, %d bytes\n" (Md.levels md)
    (Md.num_live_nodes md) (Md.memory_bytes md);

  (* Measure: expected number of busy workers.  A decomposable reward:
     it depends only on the level-2 substate. *)
  let sizes = Array.map Array.length exp.Model.local_spaces in
  let busy =
    Decomposed.of_level ~sizes ~level:2 (fun i ->
        Array.fold_left ( + ) 0 exp.Model.local_spaces.(1).(i) |> float_of_int)
  in
  let initial = Decomposed.point ~sizes exp.Model.initial_tuple in

  (* Compositional (ordinary) lumping. *)
  let result = Compositional.lump Ordinary md ~rewards:[ busy ] ~initial in
  Array.iteri
    (fun i p ->
      Printf.printf "level %d: %d -> %d states\n" (i + 1)
        (Mdl_partition.Partition.size p)
        (Mdl_partition.Partition.num_classes p))
    result.Compositional.partitions;
  let lumped_ss = Compositional.lump_statespace result ss in
  Printf.printf "lumped reachable states: %d (was %d)\n" (Statespace.size lumped_ss)
    (Statespace.size ss);

  (* Solve the lumped chain and compute the measure. *)
  let pi_lumped, stats = Md_solve.steady_state ~tol:1e-13 result.Compositional.lumped lumped_ss in
  let busy_lumped = Compositional.lumped_rewards result busy in
  let measure_lumped =
    Solver.expected_reward pi_lumped (Decomposed.to_vector busy_lumped lumped_ss)
  in
  Printf.printf "lumped solve: %d iterations\n" stats.Solver.iterations;

  (* Cross-check against the unlumped solution. *)
  let pi, _ = Md_solve.steady_state ~tol:1e-13 md ss in
  let measure_flat = Solver.expected_reward pi (Decomposed.to_vector busy ss) in
  Printf.printf "expected busy workers: lumped %.9f, flat %.9f\n" measure_lumped
    measure_flat;
  if Float.abs (measure_lumped -. measure_flat) > 1e-8 then begin
    prerr_endline "mismatch!";
    exit 1
  end;
  print_endline "quickstart OK"

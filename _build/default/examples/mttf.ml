(* Mean time to failure of the workstation cluster, computed on the
   compositionally lumped chain.

   With restocking disabled, "all stations down and no spares left" is
   absorbing: MTTF is the expected time to reach it.  Expected hitting
   times of a class-closed target are class-constant under ordinary
   lumping, so the MTTF computed on the ~10x smaller lumped chain equals
   the MTTF of the full chain — which we verify.

   Run with: dune exec examples/mttf.exe [-- stations] *)

module Model = Mdl_san.Model
module Statespace = Mdl_md.Statespace
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Ctmc = Mdl_ctmc.Ctmc
module Absorption = Mdl_ctmc.Absorption
module Workstations = Mdl_models.Workstations

let () =
  let stations = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5 in
  let p = { (Workstations.default ~stations) with Workstations.restock = 0.0 } in
  let b = Workstations.build p in
  let ss = b.Workstations.exploration.Model.statespace in
  Printf.printf "cluster of %d stations, %d spares, no restocking: %d states\n%!"
    stations p.Workstations.spares (Statespace.size ss);

  let result =
    Compositional.lump Ordinary b.Workstations.md
      ~rewards:[ b.Workstations.rewards_operational ]
      ~initial:b.Workstations.initial
  in
  let lumped_ss = Compositional.lump_statespace result ss in
  assert (Compositional.is_closed result ss);
  Printf.printf "lumped: %d states (%.1fx)\n%!" (Statespace.size lumped_ss)
    (float_of_int (Statespace.size ss) /. float_of_int (Statespace.size lumped_ss));

  (* The failure state is absorbing, i.e. has exit rate zero — a purely
     structural predicate that survives lumping. *)
  let mttf_of md space =
    let ctmc = Md_solve.ctmc_of md space in
    let absorbing i = Ctmc.exit_rate ctmc i = 0.0 in
    let t, stats = Absorption.mean_time_to_absorption ~tol:1e-12 ctmc ~absorbing in
    (t, stats)
  in
  let t_full, _ = mttf_of b.Workstations.md ss in
  let t_lumped, stats = mttf_of result.Compositional.lumped lumped_ss in
  Printf.printf "absorption solve on the lumped chain: %d sweeps\n" stats.Mdl_ctmc.Solver.iterations;

  (* MTTF from the initial state, both ways. *)
  let init_full =
    match Statespace.index ss b.Workstations.exploration.Model.initial_tuple with
    | Some i -> i
    | None -> assert false
  in
  let init_lumped =
    match
      Statespace.index lumped_ss
        (Compositional.class_tuple result b.Workstations.exploration.Model.initial_tuple)
    with
    | Some i -> i
    | None -> assert false
  in
  Printf.printf "MTTF (full chain):   %.9f\n" t_full.(init_full);
  Printf.printf "MTTF (lumped chain): %.9f\n" t_lumped.(init_lumped);
  assert (Float.abs (t_full.(init_full) -. t_lumped.(init_lumped)) < 1e-7);

  (* And indeed hitting times are class-constant on the full chain. *)
  let ok = ref true in
  Statespace.iter
    (fun i s ->
      match Statespace.index lumped_ss (Compositional.class_tuple result s) with
      | Some c -> if Float.abs (t_full.(i) -. t_lumped.(c)) > 1e-7 then ok := false
      | None -> ok := false)
    ss;
  Printf.printf "hitting times class-constant: %b\n" !ok;
  assert !ok;
  print_endline "mttf OK"

(* Tests for the compositional modelling layer (mdl_san): exploration,
   descriptor generation, and agreement between the flat chain and the
   MD-represented chain. *)

module Vec = Mdl_sparse.Vec
module Csr = Mdl_sparse.Csr
module Model = Mdl_san.Model
module Md = Mdl_md.Md
module Statespace = Mdl_md.Statespace
module Md_vector = Mdl_md.Md_vector
module Kronecker = Mdl_kron.Kronecker

let id = Model.identity_effect

(* A tiny two-component model: a token moves between a 2-state switch
   and modulates a 3-state counter. *)
let tiny_model () =
  let switch = { Model.name = "switch"; initial = [| 0 |] } in
  let counter = { Model.name = "counter"; initial = [| 0 |] } in
  let flip =
    {
      Model.label = "flip";
      rate = 2.0;
      effects = [| (fun s -> [ ([| 1 - s.(0) |], 1.0) ]); id |];
    }
  in
  let count =
    {
      Model.label = "count";
      rate = 1.0;
      effects =
        [|
          (fun s -> if s.(0) = 1 then [ (s, 1.0) ] else []);
          (fun s -> [ ([| (s.(0) + 1) mod 3 |], 1.0) ]);
        |];
    }
  in
  Model.make ~components:[| switch; counter |] ~events:[ flip; count ]

let test_explore_tiny () =
  let exp = Model.explore (tiny_model ()) in
  Alcotest.(check int) "6 states" 6 (Statespace.size exp.Model.statespace);
  Alcotest.(check int) "switch space" 2 (Array.length exp.Model.local_spaces.(0));
  Alcotest.(check int) "counter space" 3 (Array.length exp.Model.local_spaces.(1));
  Alcotest.(check (option int)) "local index" (Some 0)
    (Model.local_index exp 1 [| 0 |])

let test_explore_guards_restrict () =
  (* A model where the second component never moves because the guard on
     component 1 never holds. *)
  let a = { Model.name = "a"; initial = [| 0 |] } in
  let b = { Model.name = "b"; initial = [| 0 |] } in
  let blocked =
    {
      Model.label = "blocked";
      rate = 1.0;
      effects =
        [|
          (fun s -> if s.(0) = 5 then [ (s, 1.0) ] else []);
          (fun s -> [ ([| s.(0) + 1 |], 1.0) ]);
        |];
    }
  in
  let spin =
    { Model.label = "spin"; rate = 1.0; effects = [| (fun s -> [ (s, 1.0) ]); id |] }
  in
  let exp = Model.explore (Model.make ~components:[| a; b |] ~events:[ blocked; spin ]) in
  Alcotest.(check int) "single state" 1 (Statespace.size exp.Model.statespace)

let test_explore_max_states () =
  let a = { Model.name = "a"; initial = [| 0 |] } in
  let grow =
    {
      Model.label = "grow";
      rate = 1.0;
      effects = [| (fun s -> [ ([| s.(0) + 1 |], 1.0) ]) |];
    }
  in
  let m = Model.make ~components:[| a |] ~events:[ grow ] in
  Alcotest.check_raises "state explosion guard"
    (Failure "Model.explore: more than 10 states") (fun () ->
      ignore (Model.explore ~max_states:10 m))

let test_model_validation () =
  let a = { Model.name = "a"; initial = [| 0 |] } in
  Alcotest.check_raises "no components" (Invalid_argument "Model.make: no components")
    (fun () -> ignore (Model.make ~components:[||] ~events:[]));
  Alcotest.check_raises "wrong effects"
    (Invalid_argument "Model.make: event e has 2 effects for 1 components") (fun () ->
      ignore
        (Model.make ~components:[| a |]
           ~events:[ { Model.label = "e"; rate = 1.0; effects = [| id; id |] } ]));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Model.make: event e has non-positive rate") (fun () ->
      ignore
        (Model.make ~components:[| a |]
           ~events:[ { Model.label = "e"; rate = -1.0; effects = [| id |] } ]))

(* The MD and the explicit BFS must describe the same chain on the
   reachable states: compare the MD-flattened matrix over the state
   space with a direct enumeration of transitions. *)
let flat_rates_by_enumeration exp =
  let m = exp.Model.model in
  let ss = exp.Model.statespace in
  let n = Statespace.size ss in
  let ncomp = Array.length (Model.components m) in
  let coo = Mdl_sparse.Coo.create ~rows:n ~cols:n in
  Statespace.iter
    (fun i tuple ->
      let locals =
        Array.mapi (fun k idx -> exp.Model.local_spaces.(k).(idx)) tuple
      in
      List.iter
        (fun e ->
          let succs = Array.mapi (fun k eff -> eff locals.(k)) e.Model.effects in
          if Array.for_all (fun l -> l <> []) succs then begin
            let rec expand k acc w =
              if k = ncomp then begin
                let target = Array.of_list (List.rev acc) in
                match Statespace.index ss target with
                | Some jdx -> Mdl_sparse.Coo.add coo i jdx (e.Model.rate *. w)
                | None -> Alcotest.fail "successor not reachable"
              end
              else
                List.iter
                  (fun (s', ww) ->
                    match Model.local_index exp (k + 1) s' with
                    | Some li -> expand (k + 1) (li :: acc) (w *. ww)
                    | None -> Alcotest.fail "local successor not discovered")
                  succs.(k)
            in
            expand 0 [] 1.0
          end)
        (Model.events m))
    ss;
  Csr.of_coo coo

let test_md_matches_semantics () =
  let exp = Model.explore (tiny_model ()) in
  let md = Model.md_of exp in
  let direct = flat_rates_by_enumeration exp in
  let via_md = Md_vector.to_csr md exp.Model.statespace in
  Alcotest.(check bool) "MD = direct semantics" true (Csr.approx_equal direct via_md)

let test_workstations_md_matches_semantics () =
  let b = Mdl_models.Workstations.build (Mdl_models.Workstations.default ~stations:3) in
  let exp = b.Mdl_models.Workstations.exploration in
  let direct = flat_rates_by_enumeration exp in
  let via_md = Md_vector.to_csr b.Mdl_models.Workstations.md exp.Model.statespace in
  Alcotest.(check bool) "workstations MD = semantics" true (Csr.approx_equal direct via_md)

let test_polling_md_matches_semantics () =
  let b = Mdl_models.Polling.build (Mdl_models.Polling.default ~customers:2) in
  let exp = b.Mdl_models.Polling.exploration in
  let direct = flat_rates_by_enumeration exp in
  let via_md = Md_vector.to_csr b.Mdl_models.Polling.md exp.Model.statespace in
  Alcotest.(check bool) "polling MD = semantics" true (Csr.approx_equal direct via_md)

let test_tandem_small_md_matches_semantics () =
  let p =
    {
      (Mdl_models.Tandem.default ~jobs:1) with
      Mdl_models.Tandem.hyper_dim = 2;
      msmq_servers = 2;
      msmq_queues = 2;
    }
  in
  let b = Mdl_models.Tandem.build p in
  let exp = b.Mdl_models.Tandem.exploration in
  let direct = flat_rates_by_enumeration exp in
  let via_md = Md_vector.to_csr b.Mdl_models.Tandem.md exp.Model.statespace in
  Alcotest.(check bool) "tandem MD = semantics" true (Csr.approx_equal direct via_md)

let test_multitier_md_matches_semantics () =
  let b = Mdl_models.Multitier.build (Mdl_models.Multitier.default ~clients:2) in
  let exp = b.Mdl_models.Multitier.exploration in
  let direct = flat_rates_by_enumeration exp in
  let via_md = Md_vector.to_csr b.Mdl_models.Multitier.md exp.Model.statespace in
  Alcotest.(check bool) "multitier MD = semantics" true (Csr.approx_equal direct via_md)

let explorations_identical e1 e2 =
  let open Mdl_san in
  Statespace.size e1.Model.statespace = Statespace.size e2.Model.statespace
  && e1.Model.initial_tuple = e2.Model.initial_tuple
  && Array.for_all2 ( = ) e1.Model.local_spaces e2.Model.local_spaces
  &&
  let same = ref true in
  Statespace.iter
    (fun i s -> if Statespace.index e2.Model.statespace s <> Some i then same := false)
    e1.Model.statespace;
  !same

let test_symbolic_matches_explicit () =
  List.iter
    (fun (name, m) ->
      let e1 = Model.explore m in
      let e2 = Model.explore_symbolic m in
      Alcotest.(check bool) (name ^ ": identical explorations") true
        (explorations_identical e1 e2);
      (* the canonical descriptors also agree *)
      Alcotest.(check bool) (name ^ ": same matrix") true
        (Csr.approx_equal
           (Md_vector.to_csr (Model.md_of e1) e1.Model.statespace)
           (Md_vector.to_csr (Model.md_of e2) e2.Model.statespace)))
    [
      ("tiny", tiny_model ());
      ("workstations", Mdl_models.Workstations.model (Mdl_models.Workstations.default ~stations:3));
      ("polling", Mdl_models.Polling.model (Mdl_models.Polling.default ~customers:2));
      ("multitier", Mdl_models.Multitier.model (Mdl_models.Multitier.default ~clients:2));
      ( "tandem",
        Mdl_models.Tandem.model
          {
            (Mdl_models.Tandem.default ~jobs:1) with
            Mdl_models.Tandem.hyper_dim = 2;
            msmq_servers = 2;
            msmq_queues = 2;
          } );
    ]

let test_symbolic_max_states () =
  let a = { Model.name = "a"; initial = [| 0 |] } in
  let grow =
    {
      Model.label = "grow";
      rate = 1.0;
      effects = [| (fun s -> [ ([| s.(0) + 1 |], 1.0) ]) |];
    }
  in
  let m = Model.make ~components:[| a |] ~events:[ grow ] in
  match Model.explore_symbolic ~max_states:10 m with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

let test_compact_preserves_matrix () =
  let exp = Model.explore (tiny_model ()) in
  let raw = Kronecker.to_md exp.Model.descriptor in
  let compacted = Mdl_md.Compact.merge_terms raw in
  Alcotest.(check bool) "merge_terms preserves the matrix" true
    (Csr.approx_equal (Md.to_csr raw) (Md.to_csr compacted));
  (* In slice form every formal sum above the bottom level is a single
     term. *)
  let ok = ref true in
  Array.iteri
    (fun l ids ->
      if l < Md.levels compacted - 1 then
        List.iter
          (fun id ->
            Md.iter_node_entries compacted id (fun _ _ s ->
                if Mdl_md.Formal_sum.num_terms s > 1 then ok := false))
          ids)
    (Md.live_nodes compacted);
  Alcotest.(check bool) "single-term sums" true !ok

(* ----- whole-pipeline fuzzing over random compositional models ----- *)

(* A deterministic random model from a seed: 1-3 bounded-counter
   components, 1-5 events picked from a small effect repertoire. *)
let random_model seed =
  let rng = Mdl_util.Prng.create (Int64.of_int seed) in
  let ncomp = 1 + Mdl_util.Prng.int rng 3 in
  let caps = Array.init ncomp (fun _ -> 1 + Mdl_util.Prng.int rng 3) in
  let components =
    Array.init ncomp (fun k ->
        { Model.name = Printf.sprintf "c%d" k; initial = [| 0 |] })
  in
  let effect_of_kind cap kind =
    match kind with
    | 0 -> id
    | 1 -> fun s -> if s.(0) < cap then [ ([| s.(0) + 1 |], 1.0) ] else []
    | 2 -> fun s -> if s.(0) > 0 then [ ([| s.(0) - 1 |], 1.0) ] else []
    | 3 -> fun s -> if s.(0) > 0 then [ ([| 0 |], 1.0) ] else []
    | 4 ->
        (* probabilistic branch: up or reset *)
        fun s ->
          if s.(0) > 0 && s.(0) < cap then
            [ ([| s.(0) + 1 |], 0.5); ([| 0 |], 0.5) ]
          else []
    | _ -> fun s -> if s.(0) <= 1 then [ ([| 1 - s.(0) |], 1.0) ] else []
  in
  let nevents = 1 + Mdl_util.Prng.int rng 5 in
  let events =
    List.init nevents (fun e ->
        {
          Model.label = Printf.sprintf "e%d" e;
          rate = float_of_int (1 + Mdl_util.Prng.int rng 3);
          effects =
            Array.init ncomp (fun k ->
                effect_of_kind caps.(k) (Mdl_util.Prng.int rng 6));
        })
  in
  Model.make ~components ~events

let arb_seed = QCheck.(make ~print:string_of_int Gen.(int_range 0 100_000))

let fuzz_pipeline =
  QCheck.Test.make ~count:60 ~name:"pipeline fuzz: explore/symbolic/MD/lump/measures"
    arb_seed (fun seed ->
      let m = random_model seed in
      let e1 = Model.explore ~max_states:100_000 m in
      let e2 = Model.explore_symbolic ~max_states:100_000 m in
      (* 1. both exploration engines agree *)
      if not (explorations_identical e1 e2) then false
      else begin
        let md = Model.md_of e1 in
        let ss = e1.Model.statespace in
        (* 2. the MD agrees with the direct semantics *)
        let direct = flat_rates_by_enumeration e1 in
        let via_md = Md_vector.to_csr md ss in
        if not (Csr.approx_equal direct via_md) then false
        else begin
          (* 3. lump with a protected level-1 reward *)
          let sizes = Array.map Array.length e1.Model.local_spaces in
          let reward =
            Mdl_core.Decomposed.of_level ~sizes ~level:1 (fun i ->
                float_of_int e1.Model.local_spaces.(0).(i).(0))
          in
          let initial = Mdl_core.Decomposed.point ~sizes e1.Model.initial_tuple in
          let result = Mdl_core.Compositional.lump Ordinary md ~rewards:[ reward ] ~initial in
          if not (Mdl_core.Compositional.is_closed result ss) then
            (* closure can fail for asymmetric random models: the lumped
               chain is then not used; nothing more to check *)
            true
          else begin
            let lumped_ss = Mdl_core.Compositional.lump_statespace result ss in
            (* 4. stationary aggregation commutes and the protected
               measure is preserved *)
            let pi, st1 = Mdl_core.Md_solve.steady_state ~tol:1e-12 ~max_iter:50_000 md ss in
            let pi_l, st2 =
              Mdl_core.Md_solve.steady_state ~tol:1e-12 ~max_iter:50_000
                result.Mdl_core.Compositional.lumped lumped_ss
            in
            if not (st1.Mdl_ctmc.Solver.converged && st2.Mdl_ctmc.Solver.converged) then
              QCheck.assume_fail () (* skip pathological convergence cases *)
            else begin
              let agg = Mdl_core.Compositional.aggregate_vector result ss lumped_ss pi in
              let r_flat =
                Mdl_ctmc.Solver.expected_reward pi
                  (Mdl_core.Decomposed.to_vector reward ss)
              in
              let r_lumped =
                Mdl_ctmc.Solver.expected_reward pi_l
                  (Mdl_core.Decomposed.to_vector
                     (Mdl_core.Compositional.lumped_rewards result reward)
                     lumped_ss)
              in
              Vec.diff_inf agg pi_l < 1e-7 && Float.abs (r_flat -. r_lumped) < 1e-7
            end
          end
        end
      end)

let fuzz_merge =
  QCheck.Test.make ~count:60 ~name:"pipeline fuzz: merge_adjacent preserves semantics"
    arb_seed (fun seed ->
      let m = random_model seed in
      let e = Model.explore_symbolic ~max_states:100_000 m in
      let md = Model.md_of e in
      if Mdl_md.Md.levels md < 2 then true
      else begin
        let ss = e.Model.statespace in
        let merged = Mdl_md.Restructure.merge_adjacent md 1 in
        let merged_ss = Statespace.map ss (Mdl_md.Restructure.merge_tuple md 1) in
        let n = Statespace.size ss in
        let x = Array.init n (fun i -> float_of_int ((i mod 5) + 1)) in
        Vec.approx_equal (Md_vector.vec_mul md ss x) (Md_vector.vec_mul merged merged_ss x)
      end)

let qcheck_tests = [ fuzz_pipeline; fuzz_merge ]

let tests =
  [
    Alcotest.test_case "explore tiny model" `Quick test_explore_tiny;
    Alcotest.test_case "guards restrict exploration" `Quick test_explore_guards_restrict;
    Alcotest.test_case "max_states guard" `Quick test_explore_max_states;
    Alcotest.test_case "model validation" `Quick test_model_validation;
    Alcotest.test_case "MD matches semantics (tiny)" `Quick test_md_matches_semantics;
    Alcotest.test_case "MD matches semantics (workstations)" `Quick
      test_workstations_md_matches_semantics;
    Alcotest.test_case "MD matches semantics (polling)" `Quick
      test_polling_md_matches_semantics;
    Alcotest.test_case "MD matches semantics (tandem J=1)" `Slow
      test_tandem_small_md_matches_semantics;
    Alcotest.test_case "MD matches semantics (multitier)" `Quick
      test_multitier_md_matches_semantics;
    Alcotest.test_case "symbolic = explicit exploration" `Quick
      test_symbolic_matches_explicit;
    Alcotest.test_case "symbolic max_states guard" `Quick test_symbolic_max_states;
    Alcotest.test_case "compact preserves matrix" `Quick test_compact_preserves_matrix;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests

test/suite_models.ml: Alcotest Array Mdl_core Mdl_ctmc Mdl_lumping Mdl_md Mdl_models Mdl_partition Mdl_san Mdl_sparse Mdl_util Printf

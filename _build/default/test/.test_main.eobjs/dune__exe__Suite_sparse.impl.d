test/suite_sparse.ml: Alcotest Array Filename Fun List Mdl_sparse Printf QCheck QCheck_alcotest String Sys Test

test/suite_san.ml: Alcotest Array Float Gen Int64 List Mdl_core Mdl_ctmc Mdl_kron Mdl_md Mdl_models Mdl_san Mdl_sparse Mdl_util Printf QCheck QCheck_alcotest

test/suite_ctmc.ml: Alcotest Array Float Gen List Mdl_ctmc Mdl_sparse Printf QCheck QCheck_alcotest String Test

test/suite_md.ml: Alcotest Array Filename Format Fun List Mdl_kron Mdl_md Mdl_models Mdl_san Mdl_sparse Mdl_util Printf QCheck QCheck_alcotest Random String Sys Test

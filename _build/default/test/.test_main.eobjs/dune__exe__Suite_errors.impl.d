test/suite_errors.ml: Alcotest Mdl_core Mdl_ctmc Mdl_kron Mdl_md Mdl_partition Mdl_sparse

test/suite_core.ml: Alcotest Array List Mdl_core Mdl_ctmc Mdl_kron Mdl_lumping Mdl_md Mdl_partition Mdl_sparse Mdl_util Printf QCheck QCheck_alcotest Random String

test/suite_util.ml: Alcotest Array Float Int64 List Mdl_util QCheck QCheck_alcotest Test

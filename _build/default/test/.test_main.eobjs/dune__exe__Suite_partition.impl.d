test/suite_partition.ml: Alcotest Array Gen Hashtbl List Mdl_partition Option Printf QCheck QCheck_alcotest String Test

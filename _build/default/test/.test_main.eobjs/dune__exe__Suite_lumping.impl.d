test/suite_lumping.ml: Alcotest Array List Mdl_ctmc Mdl_lumping Mdl_partition Mdl_sparse Mdl_util Printf QCheck QCheck_alcotest String

bin/lumpmd.mli:

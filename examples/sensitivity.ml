(* Sensitivity analysis over the reward specification: how the lumped
   size and the steady-state measures of the tandem system respond as
   the protected measure set resolves one level's state ever more
   finely.

   Every point lumps the SAME matrix diagram under a different reward
   family — the paper's headline workflow (Section 6): a parameter
   study re-lumps and re-solves many times, and nearly all splitter-key
   column walks recur between nearby points.  [Compositional.lump_sweep]
   batches the whole study through one engine whose caches survive
   across points (the key cache's content-keyed row store, the
   per-level fixed-point memo, the rebuild memo), bit-identical to an
   independent [Compositional.lump] per point but several times faster
   once warm.

   Run with: dune exec examples/sensitivity.exe [-- J] *)

module Model = Mdl_san.Model
module Statespace = Mdl_md.Statespace
module Md = Mdl_md.Md
module Decomposed = Mdl_core.Decomposed
module Compositional = Mdl_core.Compositional
module Md_solve = Mdl_core.Md_solve
module Solver = Mdl_ctmc.Solver
module Tandem = Mdl_models.Tandem

let () =
  let jobs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1 in
  let b = Tandem.build (Tandem.default ~jobs) in
  let md = b.Tandem.md in
  let ss = b.Tandem.exploration.Model.statespace in
  let sizes = Md.sizes md in
  (* Threshold indicators [s_level >= k] on the largest level, at cut
     points spread across its range: protecting the indicator keeps
     P[s_level >= k] computable on the lumped chain, at the price of a
     finer (larger) quotient the closer k cuts through symmetric
     states. *)
  let level =
    let li = ref 0 in
    Array.iteri (fun i n -> if n > sizes.(!li) then li := i) sizes;
    !li + 1
  in
  let size = sizes.(level - 1) in
  let ks =
    List.sort_uniq compare
      (List.filter_map
         (fun i ->
           let k = i * size / 8 in
           if k >= 1 && k < size then Some k else None)
         [ 1; 2; 3; 4; 5; 6; 7 ])
  in
  let indicator k =
    Decomposed.of_level ~sizes ~level (fun s -> if s >= k then 1.0 else 0.0)
  in
  let base = [ b.Tandem.rewards_availability ] in
  let specs =
    { Compositional.sweep_rewards = base; sweep_initial = b.Tandem.initial }
    :: List.map
         (fun k ->
           {
             Compositional.sweep_rewards = indicator k :: base;
             sweep_initial = b.Tandem.initial;
           })
         ks
  in
  let npoints = List.length specs in
  Printf.printf "tandem (J=%d), %d states, sweeping %d reward specifications\n" jobs
    (Statespace.size ss) npoints;
  (* The batched sweep, timed as a whole; then one independent lump of
     the first point as the cold-start reference every point would pay
     without the shared engine. *)
  let results, sweep_s =
    Mdl_util.Timer.time (fun () ->
        Compositional.lump_sweep Mdl_lumping.State_lumping.Ordinary md ~points:specs)
  in
  let _, cold_s =
    Mdl_util.Timer.time (fun () ->
        Compositional.lump Mdl_lumping.State_lumping.Ordinary md ~rewards:base
          ~initial:b.Tandem.initial)
  in
  let labels =
    "base" :: List.map (fun k -> Printf.sprintf "s%d >= %d" level k) ks
  in
  Printf.printf "%-14s %-10s %-14s %-14s %s\n" "point" "lumped" "P[s>=k]"
    "availability" "solve";
  List.iter2
    (fun (label, spec) r ->
      let lumped_ss = Compositional.lump_statespace r ss in
      assert (Compositional.is_closed r ss);
      let (pi, stats), solve_s =
        Mdl_util.Timer.time (fun () ->
            Md_solve.steady_state ~tol:1e-11 ~max_iter:500_000
              r.Compositional.lumped lumped_ss)
      in
      let measure d =
        Solver.expected_reward pi
          (Decomposed.to_vector (Compositional.lumped_rewards r d) lumped_ss)
      in
      let tail =
        match spec.Compositional.sweep_rewards with
        | [ ind; _ ] -> Printf.sprintf "%.8f" (measure ind)
        | _ -> "-"
      in
      Printf.printf "%-14s %-10d %-14s %-14.8f %.2f s (%d it)\n" label
        (Statespace.size lumped_ss) tail
        (measure b.Tandem.rewards_availability)
        solve_s stats.Solver.iterations)
    (List.combine labels specs) results;
  let amortised = (sweep_s -. cold_s) /. float_of_int (max 1 (npoints - 1)) in
  Printf.printf
    "independent lump (cold): %.4fs per point; batched sweep: %.4fs total, amortised \
     %.4fs per warm point (%.1fx vs cold)\n"
    cold_s sweep_s amortised (cold_s /. amortised)
